(* Score-bucketed antichain: an immutable bucket array behind one
   Atomic root.  Readers grab the snapshot and scan — no locks, no
   retries; writers rebuild the (small) bucket spine and CAS.  Bucket
   [s] holds the entries with clamped score [s]; monotonicity of the
   score w.r.t. subsumption confines queries to [score v .. max_score]
   and insert-side redundancy sweeps to [0 .. score d]. *)

type snap = { buckets : int array list array; n : int }

type t = {
  subsumed : int array -> int array -> bool;
  score : int array -> int;
  max_score : int;
  cap : int;
  root : snap Atomic.t;
  evicted : int Atomic.t;
  n_probes : int Atomic.t;
  n_probe_entries : int Atomic.t;
  on_probe : (int -> unit) option;
}

let create ?(cap = 512) ?on_probe ~subsumed ~score ~max_score () =
  let max_score = max 0 max_score in
  {
    subsumed;
    score;
    max_score;
    cap = max 1 cap;
    root = Atomic.make { buckets = Array.make (max_score + 1) []; n = 0 };
    evicted = Atomic.make 0;
    n_probes = Atomic.make 0;
    n_probe_entries = Atomic.make 0;
    on_probe;
  }

let clamp t s = if s < 0 then 0 else if s > t.max_score then t.max_score else s

(* One dominance query against a snapshot.  Returns the number of
   entries tested (the probe length) and whether a cover was found. *)
let query t snap v =
  let lo = clamp t (t.score v) in
  let tested = ref 0 in
  let hit = ref false in
  let s = ref lo in
  while (not !hit) && !s <= t.max_score do
    let rec scan = function
      | [] -> ()
      | d :: tl ->
          incr tested;
          if t.subsumed v d then hit := true else scan tl
    in
    scan snap.buckets.(!s);
    incr s
  done;
  (!tested, !hit)

let record_probe t tested =
  let k = Atomic.fetch_and_add t.n_probes 1 in
  ignore (Atomic.fetch_and_add t.n_probe_entries tested);
  match t.on_probe with
  | Some f when k land 127 = 0 -> f tested
  | _ -> ()

let covered t v =
  let tested, hit = query t (Atomic.get t.root) v in
  record_probe t tested;
  hit

let add t d =
  let sd = clamp t (t.score d) in
  let rec attempt () =
    let snap = Atomic.get t.root in
    let tested, hit = query t snap d in
    record_probe t tested;
    if hit then false
    else begin
      let buckets = Array.copy snap.buckets in
      (* Drop entries the new vector subsumes: only buckets <= sd can
         hold them (monotone score). *)
      let removed = ref 0 in
      for s = 0 to sd do
        let keep = List.filter (fun e -> not (t.subsumed e d)) buckets.(s) in
        removed := !removed + (List.length buckets.(s) - List.length keep);
        buckets.(s) <- keep
      done;
      buckets.(sd) <- d :: buckets.(sd);
      let n = ref (snap.n - !removed + 1) in
      (* Cap: evict lowest-score entries — they dominate the fewest
         states, so they are the cheapest facts to lose. *)
      let evicted_here = ref 0 in
      let s = ref 0 in
      while !n > t.cap && !s <= t.max_score do
        (match buckets.(!s) with
        | [] -> incr s
        | _ :: tl ->
            buckets.(!s) <- tl;
            decr n;
            incr evicted_here)
      done;
      if Atomic.compare_and_set t.root snap { buckets; n = !n } then begin
        if !evicted_here > 0 then
          ignore (Atomic.fetch_and_add t.evicted !evicted_here);
        true
      end
      else attempt ()
    end
  in
  attempt ()

let size t = (Atomic.get t.root).n
let evictions t = Atomic.get t.evicted
let probes t = Atomic.get t.n_probes
let probe_entries t = Atomic.get t.n_probe_entries
