(* rtsynd — the resident admission/synthesis daemon.

   Speaks the versioned jsonl protocol of Rt_daemon.Protocol on
   stdin/stdout; every state mutation is journaled (write-ahead,
   fsynced) before it is acknowledged, so kill -9 + restart replays to
   the digest-verified pre-crash certified state.  See docs/DAEMON.md. *)

open Cmdliner

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Ok s
  | exception Sys_error e -> Error e

let run spec journal max_queue max_frame degrade_heuristic degrade_analytic
    budget_ms fuel jobs socket tcp max_conns conn_queue idle_timeout_s =
  let cfg =
    {
      Rt_daemon.Daemon.journal;
      spec = None;
      max_queue;
      max_frame;
      degrade_heuristic;
      degrade_analytic;
      default_budget_ms = budget_ms;
      default_fuel = fuel;
      jobs;
    }
  in
  let serve cfg =
    match (socket, tcp) with
    | None, None -> Rt_daemon.Daemon.run cfg
    | _ ->
        Rt_daemon.Transport.run
          {
            Rt_daemon.Transport.default with
            Rt_daemon.Transport.socket;
            tcp;
            max_conns;
            conn_queue;
            idle_timeout_s;
          }
          cfg
  in
  match spec with
  | None -> serve cfg
  | Some path -> (
      match read_file path with
      | Error e ->
          prerr_endline ("rtsynd: " ^ e);
          1
      | Ok src -> serve { cfg with Rt_daemon.Daemon.spec = Some src })

let spec_arg =
  let doc =
    "Base system specification (elements, edges, optional initial \
     constraints).  Required on a fresh start; ignored when the journal \
     already holds an init record."
  in
  Arg.(value & opt (some file) None & info [ "spec" ] ~docv:"FILE" ~doc)

let journal_arg =
  let doc = "Write-ahead journal path (created if missing)." in
  Arg.(
    value
    & opt string Rt_daemon.Daemon.default_config.Rt_daemon.Daemon.journal
    & info [ "journal" ] ~docv:"FILE" ~doc)

let max_queue_arg =
  let doc =
    "Bounded request queue; requests beyond this depth are shed with an \
     $(i,overloaded) response."
  in
  Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N" ~doc)

let max_frame_arg =
  let doc =
    "Per-frame (request line) byte limit on every transport; an oversized \
     frame is dropped with a structured $(i,oversize) error and the stream \
     resynchronizes at the next newline."
  in
  Arg.(
    value
    & opt int Rt_daemon.Daemon.default_config.Rt_daemon.Daemon.max_frame
    & info [ "max-frame" ] ~docv:"BYTES" ~doc)

let socket_arg =
  let doc =
    "Serve the jsonl protocol to many concurrent clients over a Unix-domain \
     socket at $(docv) instead of stdin/stdout.  May be combined with \
     $(b,--tcp)."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc =
    "Additionally (or instead) listen on 127.0.0.1:$(docv) for concurrent \
     clients."
  in
  Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)

let max_conns_arg =
  let doc =
    "Concurrent-connection cap in socket mode; excess connections wait in \
     the listen backlog."
  in
  Arg.(
    value
    & opt int Rt_daemon.Transport.default.Rt_daemon.Transport.max_conns
    & info [ "max-conns" ] ~docv:"N" ~doc)

let conn_queue_arg =
  let doc =
    "Per-connection pending-request cap in socket mode; beyond it the newest \
     request from that connection is shed with an $(i,overloaded) response \
     (the global $(b,--max-queue) cap applies across connections)."
  in
  Arg.(
    value
    & opt int Rt_daemon.Transport.default.Rt_daemon.Transport.conn_queue
    & info [ "conn-queue" ] ~docv:"N" ~doc)

let idle_timeout_arg =
  let doc =
    "Close socket connections idle for more than $(docv) seconds (0 = \
     never)."
  in
  Arg.(
    value
    & opt float Rt_daemon.Transport.default.Rt_daemon.Transport.idle_timeout_s
    & info [ "idle-timeout-s" ] ~docv:"S" ~doc)

let degrade_heuristic_arg =
  let doc =
    "Queue depth at which the exact game-engine rescue is dropped from \
     admits (first degradation step)."
  in
  Arg.(value & opt int 8 & info [ "degrade-heuristic" ] ~docv:"N" ~doc)

let degrade_analytic_arg =
  let doc =
    "Queue depth at which admits are answered from the analytic admission \
     tests alone, without committing (second degradation step)."
  in
  Arg.(value & opt int 24 & info [ "degrade-analytic" ] ~docv:"N" ~doc)

let budget_ms_arg =
  let doc =
    "Default per-request wall-clock budget in milliseconds (0 = unlimited; \
     requests may override with $(i,budget_ms))."
  in
  Arg.(value & opt int 2000 & info [ "budget-ms" ] ~docv:"MS" ~doc)

let fuel_arg =
  let doc =
    "Default per-request fuel (state expansions; 0 = unlimited; requests \
     may override with $(i,fuel))."
  in
  Arg.(value & opt int 2_000_000 & info [ "fuel" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc = "Domain-pool lanes for synthesis (1 = sequential)." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cmd =
  let doc = "resident admission daemon for graph-based real-time models" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "$(tname) keeps a graph-based model, its certified schedule and the \
         exact engine's learned state resident, and serves admit / retire / \
         what-if / reverify / stats / snapshot / shutdown requests as one \
         JSON object per line on stdin/stdout — or, with $(b,--socket) / \
         $(b,--tcp), to many concurrent clients at once (round-robin \
         fairness, per-connection and global backpressure, idle/read \
         timeouts, graceful drain on shutdown; mutations stay serialized \
         through the journal).";
      `P
        "Every acknowledged mutation has passed the trusted certificate \
         checker and been fsynced to the write-ahead journal first; restart \
         replays the journal and re-verifies every digest.  Overload sheds \
         deterministically and degrades exact $(b,->) heuristic $(b,->) \
         analytic as queue depth grows.";
      `S Manpage.s_exit_status;
      `P "0 on clean shutdown (stdin closed or $(i,shutdown) request);";
      `P
        "1 when startup fails: corrupt journal, digest mismatch on replay, \
         or an infeasible base system;";
      `P "124 on usage errors (cmdliner).";
    ]
  in
  Cmd.v
    (Cmd.info "rtsynd" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ spec_arg $ journal_arg $ max_queue_arg $ max_frame_arg
      $ degrade_heuristic_arg $ degrade_analytic_arg $ budget_ms_arg
      $ fuel_arg $ jobs_arg $ socket_arg $ tcp_arg $ max_conns_arg
      $ conn_queue_arg $ idle_timeout_arg)

let () = exit (Cmd.eval' cmd)
