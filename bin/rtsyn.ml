(* rtsyn: command-line front end for the graph-based synthesis library.

   Subcommands:
     check      parse and validate a specification (or check a certificate)
     synth      synthesize, verify and certify a static schedule
     analyze    latency/response report for a user-supplied schedule
     simulate   replay a synthesized schedule against random arrivals
     faultsim   replay under injected timing faults with recovery
     distsim    multiprocessor replay under crashes and bus faults
     dot        Graphviz export
     multiproc  partition across processors and schedule the bus
     example    print example specifications (control system, E3 family)

   Exit codes (uniform across subcommands):
     0  success (feasible, verified, certified)
     1  infeasible / failed verification or check / misses observed
     2  command-line usage error
     3  a --budget-ms/--fuel budget was exhausted (TIMEOUT)
     4  internal error (unexpected exception, or an engine result the
        independent certificate checker rejected — fail closed)
     5  the analytic admission test was inconclusive (admit only —
        shared contract with the rtsynd daemon's degraded answers) *)

open Cmdliner
open Rt_core

let exit_ok = 0
let exit_infeasible = 1
let exit_usage = 2
let exit_timeout = 3
let exit_internal = 4

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let load_model path =
  match Rt_spec.Elaborate.load (read_file path) with
  | Ok m -> Ok m
  | Error errs -> Error (String.concat "\n" errs)

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline msg;
      exit exit_infeasible

let usage_error msg =
  Format.eprintf "rtsyn: %s@." msg;
  exit_usage

(* Fail closed: every schedule the tool publishes with exit 0 has been
   re-validated by the independent checker (Rt_check, which shares no
   code with the engines beyond the model vocabulary).  An engine
   result the checker rejects is an internal error, never a published
   schedule. *)
let internal_check_failure what errs =
  Format.eprintf "INTERNAL ERROR: %s rejected by the independent checker:@."
    what;
  List.iter (fun e -> Format.eprintf "  %s@." e) errs;
  exit_internal

let certified m sched =
  match Certify.schedule m sched with
  | Error e ->
      Format.eprintf "INTERNAL ERROR: certificate construction failed: %s@." e;
      None
  | Ok cert -> (
      match Checker.check m cert with
      | Ok () -> Some cert
      | Error errs ->
          ignore (internal_check_failure "schedule certificate" errs);
          None)

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let exits =
  [
    Cmd.Exit.info 0 ~doc:"on success (feasible, verified, certified).";
    Cmd.Exit.info 1
      ~doc:
        "on an infeasible instance, a failed verification or certificate \
         check, or observed deadline misses.";
    Cmd.Exit.info 2 ~doc:"on command-line usage errors.";
    Cmd.Exit.info 3
      ~doc:
        "when a $(b,--budget-ms)/$(b,--fuel) budget was exhausted before \
         the engines finished (TIMEOUT).";
    Cmd.Exit.info 4
      ~doc:
        "on internal errors: an unexpected exception, or an engine result \
         that the independent certificate checker rejected (the tool fails \
         closed — such a schedule is never published with exit 0).";
  ]

let cmd_info name ~doc = Cmd.info name ~doc ~exits

let spec_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SPEC" ~doc:"Specification file (see rtsyn example).")

let no_merge =
  Arg.(value & flag & info [ "no-merge" ] ~doc:"Disable shared-operation merging.")

let no_pipeline =
  Arg.(value & flag & info [ "no-pipeline" ] ~doc:"Disable software pipelining.")

let no_decompose =
  Arg.(
    value & flag
    & info [ "no-decompose" ]
        ~doc:
          "Disable compositional synthesis.  By default models whose \
           constraints split into several interaction components \
           (disjoint element sets) are solved component-wise and the \
           component schedules interleaved, with a whole-model \
           re-verification gating the result; this flag forces the \
           undecomposed pipeline.")

let max_hyperperiod =
  Arg.(
    value & opt int 1_000_000
    & info [ "max-hyperperiod" ] ~docv:"N"
        ~doc:"Abort if the cyclic schedule would exceed $(docv) slots.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains for the parallel search engine.  Defaults to the \
           $(b,RTSYN_JOBS) environment variable if set, else 1 \
           (sequential).  Results are identical at every setting; only \
           wall-clock time changes.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the engine's performance counters (windows checked, cache \
           hits, DFS nodes, wall time per stage) after the run.")

(* --jobs beats RTSYN_JOBS beats 1.  The CLI default is sequential even
   on many-core machines so that output (including explored-state
   counts) is reproducible unless parallelism is asked for. *)
let resolve_jobs = function
  | Some j -> max 1 j
  | None -> (
      match Sys.getenv_opt "RTSYN_JOBS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some j when j >= 1 -> j
          | _ -> 1)
      | None -> 1)

let with_jobs jobs f =
  match resolve_jobs jobs with
  | 1 -> f None
  | jobs -> Rt_par.Pool.with_pool ~jobs (fun p -> f (Some p))

let print_stats stats =
  if stats then
    Format.printf "=== engine counters ===@.%a@." Rt_par.Perf.pp ()

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON of the run to $(docv); open it in \
           Perfetto (ui.perfetto.dev) or chrome://tracing.  Wall-clock spans \
           cover the synthesis, exact/game and latency engines; the \
           simulate, faultsim and distsim replays add a virtual-time Gantt \
           of the executed schedule.")

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some file -> Rt_obs.Tracer.with_trace ~file f

let budget_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget in milliseconds, checked cooperatively at \
           every state expansion / candidate round.  Exhausting it reports \
           TIMEOUT (exit 3); with no budget the search is bit-for-bit the \
           default path.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Work budget: game states, DFS nodes and candidate rounds drawn \
           from one shared pool across the whole run (and across --jobs \
           lanes).  Exhausting it reports TIMEOUT (exit 3).")

let make_budget budget_ms fuel =
  let negative = function Some v -> v < 0 | None -> false in
  match (budget_ms, fuel) with
  | None, None -> Ok None
  | _ ->
      if negative budget_ms then Error "--budget-ms must be non-negative"
      else if negative fuel then Error "--fuel must be non-negative"
      else
        Ok
          (Some
             (Budget.create
                ?wall_s:
                  (Option.map (fun ms -> float_of_int ms /. 1000.) budget_ms)
                ?fuel ()))

(* Budgeted synthesis front end shared by the subcommands that
   synthesize as a means to another end (simulate, gantt, emit-c): a
   budget cut reports TIMEOUT (exit 3), any other failure is
   infeasible (exit 1), and the continuation gets the plan. *)
let budgeted_synthesis ?budget m k =
  match Synthesis.synthesize ?budget m with
  | Error e when e.Synthesis.stage = "budget" ->
      Format.eprintf "synthesis timed out: %a@." Synthesis.pp_error e;
      exit_timeout
  | Error e ->
      Format.eprintf "synthesis failed: %a@." Synthesis.pp_error e;
      exit_infeasible
  | Ok plan -> k plan

let cert_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cert" ] ~docv:"FILE"
        ~doc:
          "Write the checked witness certificate (JSON) to $(docv); \
           re-validate it later with $(b,rtsyn check --certificate).")

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let certificate_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "certificate" ] ~docv:"CERT"
          ~doc:
            "Check the witness certificate in $(docv) (written by \
             $(b,rtsyn synth --cert) or $(b,rtsyn exact --cert)) against \
             the specification with the independent checker; exit 0 iff it \
             proves its schedule feasible for this model.")
  in
  let run path certificate trace =
    with_trace trace @@ fun () ->
    let m = or_die (load_model path) in
    match certificate with
    | Some cert_file -> (
        match Rt_spec.Persist.load_certificate_file cert_file with
        | Error e ->
            Format.printf "CERTIFICATE REJECTED: %s@." e;
            exit_infeasible
        | Ok (cm, cert) -> (
            match Checker.check cm cert with
            | Ok () ->
                Format.printf
                  "CERTIFICATE OK (%d witnesses, schedule cycle %d)@."
                  (List.length cert.Certificate.witnesses)
                  (Schedule.length cert.Certificate.schedule);
                if cert.Certificate.digest = Certificate.digest_of_model m
                then Format.printf "binds to: %s (this specification)@." path
                else
                  Format.printf
                    "binds to: a synthesis rewrite of the input (digest %s; \
                     this specification elaborates to %s)@."
                    cert.Certificate.digest
                    (Certificate.digest_of_model m);
                exit_ok
            | Error errs ->
                List.iter (fun e -> Format.printf "  %s@." e) errs;
                Format.printf "CERTIFICATE REJECTED@.";
                exit_infeasible))
    | None ->
        Format.printf "%a" Model.pp m;
        Format.printf "utilization (no sharing): %.3f@." (Model.utilization m);
        Format.printf "density: %.3f@." (Model.density m);
        (match Model.hyperperiod m with
        | h -> Format.printf "hyperperiod of T_p: %d@." h
        | exception Rt_graph.Intmath.Overflow ->
            Format.printf "hyperperiod of T_p: overflow@.");
        let shared = Model.elements_shared m in
        if shared <> [] then begin
          Format.printf "shared elements:@.";
          List.iter
            (fun (e, users) ->
              Format.printf "  %s used by {%s}@."
                (Comm_graph.element m.Model.comm e).Element.name
                (String.concat " " users))
            shared
        end;
        (match Model.theorem3_premises m with
        | Ok () -> Format.printf "Theorem 3 premises: satisfied@."
        | Error es ->
            Format.printf "Theorem 3 premises: violated (%s)@."
              (String.concat "; " es));
        (match
           Rt_graph.Digraph.feedback_components (Comm_graph.graph m.Model.comm)
         with
        | [] -> ()
        | loops ->
            Format.printf "feedback loops:@.";
            List.iter
              (fun comp ->
                Format.printf "  {%s}@."
                  (String.concat " "
                     (List.map
                        (fun e ->
                          (Comm_graph.element m.Model.comm e).Element.name)
                        comp)))
              loops);
        exit_ok
  in
  Cmd.v
    (cmd_info "check"
       ~doc:"Parse and validate a specification, or check a certificate.")
    Term.(const run $ spec_file $ certificate_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* synth                                                               *)
(* ------------------------------------------------------------------ *)

let synth_cmd =
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PLAN"
          ~doc:"Write the verified plan (model + schedule) to $(docv).")
  in
  let run path no_merge no_pipeline no_decompose max_hyperperiod output cert
      budget_ms fuel jobs stats trace =
    with_trace trace @@ fun () ->
    let m = or_die (load_model path) in
    match make_budget budget_ms fuel with
    | Error msg -> usage_error msg
    | Ok budget -> (
        match
          with_jobs jobs (fun pool ->
              Synthesis.synthesize ?pool ?budget ~merge:(not no_merge)
                ~pipeline:(not no_pipeline)
                ~decompose:(not no_decompose) ~max_hyperperiod m)
        with
        | Error e when e.Synthesis.stage = "budget" ->
            Format.eprintf "synthesis timed out: %a@." Synthesis.pp_error e;
            print_stats stats;
            exit_timeout
        | Error e ->
            Format.eprintf "synthesis failed: %a@." Synthesis.pp_error e;
            print_stats stats;
            exit_infeasible
        | Ok plan -> (
            Format.printf "%a" (Synthesis.pp_plan m) plan;
            match
              certified plan.Synthesis.model_used plan.Synthesis.schedule
            with
            | None -> exit_internal
            | Some c ->
                Format.printf "certificate: OK (%d witnesses)@."
                  (List.length c.Certificate.witnesses);
                Option.iter
                  (fun f ->
                    Rt_spec.Persist.save_certificate_file f
                      plan.Synthesis.model_used c;
                    Format.printf "certificate written to %s@." f)
                  cert;
                (match output with
                | None -> ()
                | Some out ->
                    Rt_spec.Persist.save_file out plan.Synthesis.model_used
                      plan.Synthesis.schedule;
                    Format.printf "plan written to %s@." out);
                (* when tracing, replay the plan so the trace also carries
                   the synthesized schedule as a virtual-time Gantt *)
                if Rt_obs.Tracer.enabled () then
                  ignore
                    (Rt_sim.Runtime.run plan.Synthesis.model_used
                       plan.Synthesis.schedule
                       ~horizon:(2 * plan.Synthesis.hyperperiod)
                       ~arrivals:[]);
                print_stats stats;
                exit_ok))
  in
  Cmd.v
    (cmd_info "synth"
       ~doc:"Synthesize, verify and certify a static schedule.")
    Term.(
      const run $ spec_file $ no_merge $ no_pipeline $ no_decompose
      $ max_hyperperiod $ output $ cert_out_arg $ budget_ms_arg $ fuel_arg
      $ jobs_arg $ stats_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let schedule_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "schedule"; "s" ] ~docv:"SLOTS"
          ~doc:
            "Space-separated schedule: element names and '.' for idle, e.g. \
             \"f_x f_s f_s . f_k\".")
  in
  let run path sched_str budget_ms fuel trace =
    with_trace trace @@ fun () ->
    let m = or_die (load_model path) in
    match make_budget budget_ms fuel with
    | Error msg -> usage_error msg
    | Ok budget -> (
        match Schedule.of_string m.Model.comm sched_str with
        | Error e -> usage_error e
        | Ok sched -> (
            match Schedule.validate m.Model.comm sched with
            | Error errs ->
                List.iter prerr_endline errs;
                Format.printf "INFEASIBLE@.";
                exit_infeasible
            | Ok () -> (
                let result =
                  match budget with
                  | None -> Ok (Latency.verify m sched)
                  | Some b -> Latency.verify_budgeted ~budget:b m sched
                in
                match result with
                | Error reason ->
                    Format.printf "TIMEOUT: %s@." reason;
                    exit_timeout
                | Ok verdicts ->
                    List.iter
                      (fun v -> Format.printf "%a@." Latency.pp_verdict v)
                      verdicts;
                    if Latency.all_ok verdicts then begin
                      Format.printf "FEASIBLE@.";
                      exit_ok
                    end
                    else begin
                      Format.printf "INFEASIBLE@.";
                      exit_infeasible
                    end)))
  in
  Cmd.v
    (cmd_info "analyze"
       ~doc:"Latency/response verdicts for a user-supplied schedule.")
    Term.(
      const run $ spec_file $ schedule_arg $ budget_ms_arg $ fuel_arg
      $ trace_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let horizon =
    Arg.(
      value & opt int 1000
      & info [ "horizon" ] ~docv:"N" ~doc:"Slots to simulate.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for arrivals.")
  in
  let run path horizon seed budget_ms fuel trace =
    with_trace trace @@ fun () ->
    let m = or_die (load_model path) in
    match make_budget budget_ms fuel with
    | Error msg -> usage_error msg
    | Ok budget ->
        budgeted_synthesis ?budget m @@ fun plan ->
        let prng = Rt_graph.Prng.create seed in
        let arrivals =
          List.map
            (fun (c : Timing.t) ->
              ( c.name,
                Rt_sim.Arrivals.random prng ~horizon ~separation:c.period
                  ~density:0.9 ))
            (Model.asynchronous plan.Synthesis.model_used)
        in
        let report =
          Rt_sim.Runtime.run plan.Synthesis.model_used plan.Synthesis.schedule
            ~horizon ~arrivals
        in
        Format.printf "%a" Rt_sim.Runtime.pp_report report;
        List.iter
          (fun s -> Format.printf "%a@." Rt_sim.Stats.pp_summary s)
          (Rt_sim.Stats.summarize report);
        if report.Rt_sim.Runtime.misses = 0 then exit_ok
        else begin
          Format.eprintf "deadline misses observed@.";
          exit_infeasible
        end
  in
  Cmd.v
    (cmd_info "simulate"
       ~doc:"Synthesize, then replay against random arrivals.")
    Term.(
      const run $ spec_file $ horizon $ seed $ budget_ms_arg $ fuel_arg
      $ trace_arg)

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)
(* ------------------------------------------------------------------ *)

let dot_cmd =
  let what =
    Arg.(
      value
      & opt (enum [ ("comm", `Comm); ("full", `Full) ]) `Full
      & info [ "what" ] ~docv:"WHAT"
          ~doc:"Which graph to render: $(b,comm) or $(b,full).")
  in
  let run path what trace =
    with_trace trace @@ fun () ->
    let m = or_die (load_model path) in
    (match what with
    | `Comm -> print_string (Rt_spec.Dot.comm_graph m)
    | `Full -> print_string (Rt_spec.Dot.full m));
    exit_ok
  in
  Cmd.v
    (cmd_info "dot" ~doc:"Graphviz export of the model.")
    Term.(const run $ spec_file $ what $ trace_arg)

(* ------------------------------------------------------------------ *)
(* multiproc                                                           *)
(* ------------------------------------------------------------------ *)

let multiproc_cmd =
  let procs =
    Arg.(
      value & opt int 2 & info [ "procs" ] ~docv:"N" ~doc:"Number of processors.")
  in
  let msg_cost =
    Arg.(
      value & opt int 1
      & info [ "msg-cost" ] ~docv:"C"
          ~doc:"Bus slots per cross-processor transmission.")
  in
  let run path procs msg_cost cert trace =
    with_trace trace @@ fun () ->
    let m = or_die (load_model path) in
    match Rt_multiproc.Msched.synthesize ~n_procs:procs ~msg_cost m with
    | Error e ->
        Format.eprintf "multiprocessor synthesis failed: %s@." e;
        exit_infeasible
    | Ok r -> (
        Format.printf "%a" (Rt_multiproc.Msched.pp_result m) r;
        Array.iteri
          (fun i s ->
            Format.printf "p%d: %s@." i (Schedule.to_string m.Model.comm s))
          r.Rt_multiproc.Msched.processor_schedules;
        let c = Rt_multiproc.Mcert.result_cert m r in
        match Checker.check_multi m c with
        | Error errs -> internal_check_failure "multiprocessor certificate" errs
        | Ok () ->
            Format.printf "certificate: OK (%d plans)@."
              (List.length c.Certificate.mp_plans);
            Option.iter
              (fun f ->
                write_file f (Certificate.mp_to_json c);
                Format.printf "certificate written to %s@." f)
              cert;
            exit_ok)
  in
  Cmd.v
    (cmd_info "multiproc"
       ~doc:"Partition over processors, schedule the bus, certify.")
    Term.(const run $ spec_file $ procs $ msg_cost $ cert_out_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* replay                                                              *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let plan_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PLAN" ~doc:"Plan file written by 'rtsyn synth -o'.")
  in
  let horizon =
    Arg.(
      value & opt int 1000
      & info [ "horizon" ] ~docv:"N" ~doc:"Slots to replay.")
  in
  let seed =
    Arg.(
      value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Arrival seed.")
  in
  let run plan_file horizon seed trace =
    with_trace trace @@ fun () ->
    match Rt_spec.Persist.load_file plan_file with
    | Error e ->
        Format.eprintf "plan rejected: %s@." e;
        exit_infeasible
    | Ok (m, sched) ->
        Format.printf "plan verified on load.@.";
        let prng = Rt_graph.Prng.create seed in
        let arrivals =
          List.map
            (fun (c : Timing.t) ->
              ( c.name,
                Rt_sim.Arrivals.random prng ~horizon ~separation:c.period
                  ~density:0.9 ))
            (Model.asynchronous m)
        in
        let report = Rt_sim.Runtime.run m sched ~horizon ~arrivals in
        Format.printf "%a" Rt_sim.Runtime.pp_report report;
        if report.Rt_sim.Runtime.misses = 0 then exit_ok
        else begin
          Format.eprintf "deadline misses observed@.";
          exit_infeasible
        end
  in
  Cmd.v
    (cmd_info "replay"
       ~doc:"Load a saved plan (re-verifying it) and replay it.")
    Term.(const run $ plan_file $ horizon $ seed $ trace_arg)

(* ------------------------------------------------------------------ *)
(* admit                                                               *)
(* ------------------------------------------------------------------ *)

let admit_cmd =
  (* Shares the daemon's analytic answer path (Rt_daemon.Engine.admission)
     so the standalone tool and a degraded rtsynd render the same verdict
     with the same contract: 0 guaranteed, 1 impossible, 5 inconclusive. *)
  let admit_exits =
    exits
    @ [
        Cmd.Exit.info 5
          ~doc:
            "when the analytic gap tests are inconclusive — the exact \
             boundary is NP-hard (Theorem 2); run $(b,rtsyn synth) or \
             $(b,rtsyn exact) for a definitive answer.";
      ]
  in
  let run path trace =
    with_trace trace @@ fun () ->
    let m = or_die (load_model path) in
    let line, code = Rt_daemon.Engine.admission m in
    Format.printf "%s@." line;
    if code = 5 then
      Format.printf "(run 'rtsyn synth' — the exact boundary is NP-hard)@.";
    Format.printf "element demand rate bound: %.3f@." (Admission.rate_bound m);
    code
  in
  Cmd.v
    (Cmd.info "admit" ~exits:admit_exits
       ~doc:"Fast analytic admission test (no synthesis).")
    Term.(const run $ spec_file $ trace_arg)

(* ------------------------------------------------------------------ *)
(* gantt                                                               *)
(* ------------------------------------------------------------------ *)

let gantt_cmd =
  let width =
    Arg.(
      value & opt int 72
      & info [ "width" ] ~docv:"N" ~doc:"Columns per chart row.")
  in
  let optimize =
    Arg.(
      value & flag
      & info [ "optimize" ] ~doc:"Trim removable idle slots first.")
  in
  let run path width optimize budget_ms fuel trace =
    with_trace trace @@ fun () ->
    let m = or_die (load_model path) in
    match make_budget budget_ms fuel with
    | Error msg -> usage_error msg
    | Ok budget ->
        budgeted_synthesis ?budget m @@ fun plan ->
        let mu = plan.Synthesis.model_used in
        let sched =
          if optimize then
            let s, report = Optimize.trim_idle mu plan.Synthesis.schedule in
            Format.printf "trimmed %d idle slot(s)@."
              report.Optimize.removed_idle;
            s
          else plan.Synthesis.schedule
        in
        print_string (Gantt.render ~width mu.Model.comm sched);
        print_newline ();
        print_endline (Gantt.legend mu.Model.comm sched);
        exit_ok
  in
  Cmd.v
    (cmd_info "gantt" ~doc:"Synthesize and draw the schedule as ASCII Gantt.")
    Term.(
      const run $ spec_file $ width $ optimize $ budget_ms_arg $ fuel_arg
      $ trace_arg)

(* ------------------------------------------------------------------ *)
(* exact                                                               *)
(* ------------------------------------------------------------------ *)

let exact_cmd =
  let solver =
    Arg.(
      value
      & opt (enum [ ("game", `Game); ("atomic", `Atomic); ("unit", `Unit) ])
          `Game
      & info [ "solver" ] ~docv:"WHICH"
          ~doc:
            "$(b,game): the Theorem-1 simulation game (single-operation \
             constraints, exact); $(b,atomic): execution-granularity \
             enumeration; $(b,unit): unit-weight slot enumeration.")
  in
  let engine =
    Arg.(
      value
      & opt
          (enum [ ("game", `Game); ("game-ref", `Game_ref); ("dfs", `Dfs) ])
          `Game
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Search engine behind the $(b,atomic) and $(b,unit) solvers: \
             $(b,game) (default) plays the state-space simulation game with \
             memoization and dominance pruning — INFEASIBLE is definitive \
             and $(b,--budget) bounds the states explored; $(b,game-ref) is \
             the same game on the frozen reference engine (slower, kept as \
             an independent cross-check); $(b,dfs) is the bounded schedule \
             enumeration — $(b,--budget) bounds the schedule length (capped \
             at 64) and exhaustion reports UNKNOWN.")
  in
  let bound =
    Arg.(
      value & opt int 500_000
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "The engine's own resource bound: state budget ($(b,game) \
             engine) or maximum schedule length ($(b,dfs) engine).  \
             Exhaustion reports UNKNOWN (exit 1); for a caller-owned \
             wall-clock/fuel cut-off that reports TIMEOUT (exit 3) use \
             $(b,--budget-ms)/$(b,--fuel).")
  in
  let decompose_flag =
    Arg.(
      value & flag
      & info [ "decompose" ]
          ~doc:
            "Decide component-wise: split the model into interaction \
             components (constraints whose element sets are disjoint), \
             run the chosen solver on each component independently, and \
             combine — a component INFEASIBLE is definitive for the \
             whole model; all-FEASIBLE interleaves the component \
             schedules and re-verifies the whole model.  Off by default \
             so the budget/timeout contract of whole-model search is \
             unchanged.")
  in
  let run path solver engine bound decompose cert budget_ms fuel jobs
      stats_flag trace =
    with_trace trace @@ fun () ->
    let m = or_die (load_model path) in
    match make_budget budget_ms fuel with
    | Error msg -> usage_error msg
    | Ok budget ->
        let stats =
          with_jobs jobs (fun pool ->
              match solver with
              | (`Game | `Atomic | `Unit) when decompose ->
                  (* Component-wise: the single-op game is the atomic-
                     granularity game, so `Game maps onto `Atomic. *)
                  let granularity =
                    match solver with `Unit -> `Unit | _ -> `Atomic
                  in
                  (if solver = `Game
                   && not
                        (List.for_all
                           (fun (c : Timing.t) -> Task_graph.size c.graph = 1)
                           (Model.asynchronous m))
                  then
                    Format.printf
                      "note: not all constraints are single operations — \
                       playing the game at execution granularity@.");
                  Exact.solve_decomposed ?pool ?budget ~engine
                    ~max_len:(min bound 64) ~max_states:bound ~granularity m
              | `Game
                when List.for_all
                       (fun (c : Timing.t) -> Task_graph.size c.graph = 1)
                       (Model.asynchronous m) ->
                  Exact.solve_single_ops ?pool ?budget ~max_states:bound m
              | `Game ->
                  (* A constraint with a real task graph has no budget-
                     vector state; the residue-state game at execution
                     granularity decides it instead of raising. *)
                  Format.printf
                    "note: not all constraints are single operations — \
                     playing the game at execution granularity@.";
                  Exact.enumerate_atomic ?pool ?budget ~engine
                    ~max_len:(min bound 64) ~max_states:bound m
              | `Atomic ->
                  Exact.enumerate_atomic ?pool ?budget ~engine
                    ~max_len:(min bound 64) ~max_states:bound m
              | `Unit ->
                  Exact.enumerate ?pool ?budget ~engine
                    ~max_len:(min bound 64) ~max_states:bound m)
        in
        Format.printf "explored: %d@." stats.Exact.explored;
        let ret =
          match stats.Exact.outcome with
          | Exact.Feasible sched -> (
              Format.printf "FEASIBLE: %s@."
                (Schedule.to_string m.Model.comm sched);
              List.iter
                (fun v -> Format.printf "%a@." Latency.pp_verdict v)
                (Latency.verify m sched);
              (* The exact deciders answer for the asynchronous
                 constraints only, so the certificate binds to the
                 async fragment of the model. *)
              let m_async =
                Model.make ~comm:m.Model.comm
                  ~constraints:(Model.asynchronous m)
              in
              if Model.periodic m <> [] then
                Format.printf
                  "note: the certificate covers the asynchronous \
                   constraints only (the exact solvers decide T_p = {})@.";
              match certified m_async sched with
              | None -> exit_internal
              | Some c ->
                  Format.printf "certificate: OK (%d witnesses)@."
                    (List.length c.Certificate.witnesses);
                  Option.iter
                    (fun f ->
                      Rt_spec.Persist.save_certificate_file f m_async c;
                      Format.printf "certificate written to %s@." f)
                    cert;
                  exit_ok)
          | Exact.Infeasible ->
              Format.printf
                "INFEASIBLE (no execution trace meets the latencies)@.";
              exit_infeasible
          | Exact.Timeout msg ->
              Format.printf "TIMEOUT: %s@." msg;
              exit_timeout
          | Exact.Unknown msg ->
              Format.printf "UNKNOWN: %s@." msg;
              exit_infeasible
        in
        print_stats stats_flag;
        ret
  in
  Cmd.v
    (cmd_info "exact"
       ~doc:"Exact feasibility decision (asynchronous constraints).")
    Term.(
      const run $ spec_file $ solver $ engine $ bound $ decompose_flag
      $ cert_out_arg $ budget_ms_arg $ fuel_arg $ jobs_arg $ stats_arg
      $ trace_arg)

(* ------------------------------------------------------------------ *)
(* sensitivity                                                         *)
(* ------------------------------------------------------------------ *)

let sensitivity_cmd =
  (* The binary searches call synthesis many times; the budget is one
     shared sticky pool across all probes, surfaced through the
     ?synthesize hook so a cut aborts the whole analysis as TIMEOUT
     rather than mislabelling the probe infeasible. *)
  let exception Budget_cut of string in
  let run path budget_ms fuel trace =
    with_trace trace @@ fun () ->
    let m = or_die (load_model path) in
    match make_budget budget_ms fuel with
    | Error msg -> usage_error msg
    | Ok budget -> (
        let synthesize m =
          match Synthesis.synthesize ?budget m with
          | Ok _ -> true
          | Error e when e.Synthesis.stage = "budget" ->
              raise (Budget_cut (Format.asprintf "%a" Synthesis.pp_error e))
          | Error _ -> false
        in
        match
          (match Sensitivity.critical_speed ~synthesize ~resolution:16 m with
          | None -> Format.printf "the model does not synthesize as given@."
          | Some s ->
              Format.printf
                "critical time scale: %.3f (timing can shrink to %.0f%%)@." s
                (100.0 *. s);
              List.iter
                (fun (c : Timing.t) ->
                  match Sensitivity.tightest_deadline ~synthesize m c.name with
                  | Some d ->
                      Format.printf "  %s: deadline %d could tighten to %d@."
                        c.name c.deadline d
                  | None -> ())
                m.Model.constraints);
          exit_ok
        with
        | code -> code
        | exception Budget_cut reason ->
            Format.printf "TIMEOUT: %s@." reason;
            exit_timeout)
  in
  Cmd.v
    (cmd_info "sensitivity"
       ~doc:"Margin analysis: tightest deadlines and critical time scale.")
    Term.(const run $ spec_file $ budget_ms_arg $ fuel_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* emit-c                                                              *)
(* ------------------------------------------------------------------ *)

let emit_c_cmd =
  let run path budget_ms fuel trace =
    with_trace trace @@ fun () ->
    let m = or_die (load_model path) in
    match make_budget budget_ms fuel with
    | Error msg -> usage_error msg
    | Ok budget ->
        budgeted_synthesis ?budget m @@ fun plan ->
        print_string
          (Emit_c.emit plan.Synthesis.model_used plan.Synthesis.schedule);
        exit_ok
  in
  Cmd.v
    (cmd_info "emit-c"
       ~doc:
         "Synthesize and emit the C run-time scheduler (schedule table + \
          rt_tick dispatcher).")
    Term.(const run $ spec_file $ budget_ms_arg $ fuel_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* faultsim                                                            *)
(* ------------------------------------------------------------------ *)

let faultsim_cmd =
  let horizon =
    Arg.(
      value & opt int 1000
      & info [ "horizon" ] ~docv:"N" ~doc:"Slots to simulate.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for arrivals.")
  in
  let inject =
    Arg.(
      value & opt_all string []
      & info [ "inject" ] ~docv:"FAULT"
          ~doc:
            "Inject a timing fault (repeatable): \
             $(b,overrun:ELEM:FROM-UNTIL:+K) makes executions of ELEM \
             starting in [FROM, UNTIL) take K extra slots; \
             $(b,transient:ELEM:FROM-UNTIL) makes them complete without \
             output; $(b,stuck:ELEM:FROM-UNTIL) makes them never \
             complete.")
  in
  let policy =
    Arg.(
      value & opt string "abort"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Recovery policy: $(b,abort), $(b,skip), $(b,retry:N:B) (N \
             attempts, backoff B slots) or $(b,degrade)[:MODE] (switch to \
             the named degraded mode, default the most degraded one).")
  in
  let crit_spec =
    Arg.(
      value & opt string ""
      & info [ "criticality" ] ~docv:"SPEC"
          ~doc:
            "Criticality assignment, e.g. $(b,telemetry=low,nav=medium); \
             levels are low, medium, high.  Unlisted constraints default \
             to high.")
  in
  let stretch =
    Arg.(
      value & opt int 2
      & info [ "stretch" ] ~docv:"F"
          ~doc:
            "Stretch factor for sub-high constraints retained in degraded \
             modes.")
  in
  let readmit =
    Arg.(
      value & opt (some int) None
      & info [ "readmit" ] ~docv:"N"
          ~doc:
            "Fault-free slots before the primary mode is re-admitted \
             (default: twice the longest mode cycle).")
  in
  let check_period =
    Arg.(
      value & opt int 4
      & info [ "check-period" ] ~docv:"N"
          ~doc:"Watchdog check period in slots.")
  in
  let stall_limit =
    Arg.(
      value & opt int 16
      & info [ "stall-limit" ] ~docv:"N"
          ~doc:"Overshoot at which an overrun is treated as a stall.")
  in
  let parse_policy modes s =
    match String.split_on_char ':' s with
    | [ p ] when String.lowercase_ascii p = "abort" ->
        Ok Rt_sim.Robust_runtime.Abort_job
    | [ p ] when String.lowercase_ascii p = "skip" ->
        Ok Rt_sim.Robust_runtime.Skip_next
    | [ p; n; b ] when String.lowercase_ascii p = "retry" -> (
        match (int_of_string_opt n, int_of_string_opt b) with
        | Some max_attempts, Some backoff when max_attempts > 0 && backoff >= 0
          ->
            Ok (Rt_sim.Robust_runtime.Retry { max_attempts; backoff })
        | _ -> Error (Printf.sprintf "bad retry spec %S (want retry:N:B)" s))
    | p :: rest when String.lowercase_ascii p = "degrade" -> (
        let target =
          match rest with
          | [ name ] -> Some name
          | [] -> (
              (* Default to the most degraded mode. *)
              match List.rev modes with
              | last :: _ when last.Modes.name <> "primary" ->
                  Some last.Modes.name
              | _ -> None)
          | _ -> None
        in
        match target with
        | Some name when Modes.find modes name <> None ->
            Ok (Rt_sim.Robust_runtime.Degrade_to name)
        | Some name -> Error (Printf.sprintf "no mode named %S" name)
        | None ->
            Error
              "no degraded mode to switch to (assign criticalities below \
               high)")
    | _ -> Error (Printf.sprintf "unknown policy %S" s)
  in
  let run path horizon seed inject policy_s crit_s stretch readmit check_period
      stall_limit trace =
    with_trace trace @@ fun () ->
    let m = or_die (load_model path) in
    let crit =
      if crit_s = "" then []
      else
        let a = or_die (Criticality.of_spec crit_s) in
        or_die
          (Result.map_error (String.concat "\n") (Criticality.make m a))
    in
    let derivation = { Modes.stretch; max_hyperperiod = 1_000_000 } in
    let modes = or_die (Modes.derive ~derivation m crit) in
    let faults =
      List.map
        (fun s -> or_die (Rt_sim.Timing_fault.of_string m.Model.comm s))
        inject
    in
    match parse_policy modes policy_s with
    | Error msg -> usage_error msg
    | Ok policy ->
        let watchdog =
          { Rt_sim.Watchdog.check_period; stall_limit }
        in
        Format.printf "=== modes ===@.";
        List.iter (fun md -> Format.printf "%a@." Modes.pp md) modes;
        Format.printf "=== transition analysis (bound %d slots) ===@."
          (Modes.transition_slots ~check_period);
        List.iter
          (fun md ->
            match Modes.admits_transition ~check_period md with
            | Ok () -> Format.printf "%s: admitted@." md.Modes.name
            | Error errs ->
                Format.printf "%s: REJECTED@.  %s@." md.Modes.name
                  (String.concat "\n  " errs))
          modes;
        if faults <> [] then
          Format.printf "@.=== fault plan ===@.%a@."
            (Rt_sim.Timing_fault.pp_plan m.Model.comm)
            faults;
        let prng = Rt_graph.Prng.create seed in
        let arrivals =
          List.map
            (fun (c : Timing.t) ->
              ( c.name,
                Rt_sim.Arrivals.random prng ~horizon ~separation:c.period
                  ~density:0.9 ))
            (Model.asynchronous m)
        in
        let report =
          Rt_sim.Robust_runtime.run ~crit ~faults ~policy ~watchdog
            ?readmit_after:readmit ~horizon ~arrivals modes
        in
        Format.printf "@.=== replay (policy %a) ===@.%a@."
          Rt_sim.Robust_runtime.pp_policy policy
          (Rt_sim.Robust_runtime.pp_report m.Model.comm)
          report;
        List.iter
          (fun s ->
            Format.printf "%a@." Rt_sim.Stats.pp_criticality_summary s)
          (Rt_sim.Stats.by_criticality report);
        List.iter
          (fun s -> Format.printf "%a@." Rt_sim.Stats.pp_summary s)
          (Rt_sim.Stats.summarize_robust report);
        exit_ok
  in
  Cmd.v
    (cmd_info "faultsim"
       ~doc:
         "Replay a schedule under injected timing faults with watchdog \
          detection and a recovery policy.")
    Term.(
      const run $ spec_file $ horizon $ seed $ inject $ policy $ crit_spec
      $ stretch $ readmit $ check_period $ stall_limit $ trace_arg)

(* ------------------------------------------------------------------ *)
(* distsim                                                             *)
(* ------------------------------------------------------------------ *)

let distsim_cmd =
  let procs =
    Arg.(
      value & opt int 2 & info [ "procs" ] ~docv:"N" ~doc:"Number of processors.")
  in
  let msg_cost =
    Arg.(
      value & opt int 1
      & info [ "msg-cost" ] ~docv:"C"
          ~doc:"Bus slots per cross-processor transmission.")
  in
  let arq =
    Arg.(
      value & opt int 0
      & info [ "arq" ] ~docv:"K"
          ~doc:
            "ARQ retransmission slots reserved per message on top of the \
             transmission cost; up to K lost or corrupted transmissions per \
             message window are absorbed without a miss.")
  in
  let crash =
    Arg.(
      value & opt_all string []
      & info [ "crash" ] ~docv:"P:AT[:RET]"
          ~doc:
            "Crash processor P at slot AT (repeatable); with :RET it \
             returns at slot RET and the nominal table is re-admitted.")
  in
  let msg_loss =
    Arg.(
      value & opt float 0.0
      & info [ "msg-loss" ] ~docv:"RATE"
          ~doc:"Per-slot bus fault probability (deterministic in the seed).")
  in
  let policy =
    Arg.(
      value & opt string "failover"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "$(b,failover) swaps in the pre-synthesized contingency table \
             for a detected crash; $(b,none) only detects.")
  in
  let crit_spec =
    Arg.(
      value & opt string ""
      & info [ "criticality" ] ~docv:"SPEC"
          ~doc:
            "Criticality assignment, e.g. $(b,telemetry=low,nav=medium); \
             scenarios that cannot carry the full load degrade by shedding \
             below medium, then below high.  Unlisted constraints default \
             to high.")
  in
  let stretch =
    Arg.(
      value & opt int 2
      & info [ "stretch" ] ~docv:"F"
          ~doc:"Stretch factor for sub-high constraints in degraded scenarios.")
  in
  let hb_period =
    Arg.(
      value & opt int 5
      & info [ "hb-period" ] ~docv:"N" ~doc:"Slots between heartbeats.")
  in
  let hb_miss =
    Arg.(
      value & opt int 2
      & info [ "hb-miss" ] ~docv:"N"
          ~doc:"Consecutive missed heartbeats before declaring a crash.")
  in
  let migration =
    Arg.(
      value & opt int 0
      & info [ "migration" ] ~docv:"N"
          ~doc:"Slots to migrate the dead processor's state at failover.")
  in
  let horizon =
    Arg.(
      value & opt int 200
      & info [ "horizon" ] ~docv:"N" ~doc:"Slots to simulate.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for bus faults.")
  in
  let parse_crash s =
    match String.split_on_char ':' s with
    | [ p; at ] -> (
        match (int_of_string_opt p, int_of_string_opt at) with
        | Some proc, Some at ->
            Ok { Rt_sim.Dist_runtime.proc; at; return_at = None }
        | _ -> Error (Printf.sprintf "bad crash spec %S (want P:AT)" s))
    | [ p; at; ret ] -> (
        match (int_of_string_opt p, int_of_string_opt at, int_of_string_opt ret)
        with
        | Some proc, Some at, Some ret ->
            Ok { Rt_sim.Dist_runtime.proc; at; return_at = Some ret }
        | _ -> Error (Printf.sprintf "bad crash spec %S (want P:AT:RET)" s))
    | _ -> Error (Printf.sprintf "bad crash spec %S (want P:AT[:RET])" s)
  in
  let parse_crashes specs =
    List.fold_left
      (fun acc s ->
        match (acc, parse_crash s) with
        | Error _, _ -> acc
        | Ok cs, Ok c -> Ok (c :: cs)
        | Ok _, (Error _ as e) -> e)
      (Ok []) specs
    |> Result.map List.rev
  in
  (* Certify the contingency table with the independent checker (fail
     closed).  When the reconfiguration slack is not admitted the table
     as a whole carries no slack claim, so each system is certified
     individually instead. *)
  let certify_table m table ~admits_ok =
    if admits_ok then
      match
        Checker.check_table m (Rt_multiproc.Mcert.table_cert m table)
      with
      | Ok () ->
          Format.printf "contingency certificate: OK@.";
          None
      | Error errs ->
          Some (internal_check_failure "contingency certificate" errs)
    else begin
      let check_one what c =
        match Checker.check_multi m c with
        | Ok () -> None
        | Error errs -> Some (internal_check_failure what errs)
      in
      let results =
        check_one "nominal certificate"
          (Rt_multiproc.Mcert.result_cert m
             table.Rt_multiproc.Contingency.nominal)
        :: List.map
             (fun (s : Rt_multiproc.Contingency.scenario) ->
               check_one
                 (Printf.sprintf "crash-p%d scenario certificate"
                    s.Rt_multiproc.Contingency.dead)
                 (Rt_multiproc.Mcert.scenario_cert m s))
             (Rt_multiproc.Contingency.feasible_scenarios table)
      in
      match List.find_opt Option.is_some results with
      | Some code -> code
      | None ->
          Format.printf "scenario certificates: OK@.";
          None
    end
  in
  let run path procs msg_cost arq crash_specs msg_loss policy_s crit_s stretch
      hb_period hb_miss migration horizon seed jobs trace =
    with_trace trace @@ fun () ->
    let m = or_die (load_model path) in
    let crit =
      if crit_s = "" then None
      else
        let a = or_die (Criticality.of_spec crit_s) in
        Some
          (or_die
             (Result.map_error (String.concat "\n") (Criticality.make m a)))
    in
    let policy =
      match String.lowercase_ascii policy_s with
      | "failover" -> Ok Rt_sim.Dist_runtime.Failover
      | "none" -> Ok Rt_sim.Dist_runtime.No_failover
      | _ -> Error (Printf.sprintf "unknown policy %S" policy_s)
    in
    match policy with
    | Error msg -> usage_error msg
    | Ok policy -> (
        match parse_crashes crash_specs with
        | Error msg -> usage_error msg
        | Ok crashes -> (
            let heartbeat =
              { Rt_sim.Heartbeat.hb_period; miss_threshold = hb_miss }
            in
            match Rt_sim.Heartbeat.validate heartbeat with
            | Error msg -> usage_error msg
            | Ok heartbeat -> (
                let detect_bound =
                  Rt_sim.Heartbeat.detection_bound heartbeat
                in
                match
                  Rt_multiproc.Msched.synthesize ~n_procs:procs ~msg_cost
                    ~arq_slack:arq m
                with
                | Error e ->
                    Format.eprintf "nominal synthesis failed: %s@." e;
                    exit_infeasible
                | Ok nominal -> (
                    let derivation =
                      { Modes.stretch; max_hyperperiod = 1_000_000 }
                    in
                    match
                      with_jobs jobs (fun pool ->
                          Rt_multiproc.Contingency.synthesize ?pool
                            ?criticality:crit ~derivation ~detect_bound
                            ~migration m nominal)
                    with
                    | Error e ->
                        Format.eprintf "contingency synthesis failed: %s@." e;
                        exit_infeasible
                    | Ok table -> (
                        Format.printf "=== contingency table ===@.%a@."
                          (Rt_multiproc.Contingency.pp m)
                          table;
                        let admits_ok =
                          match
                            Rt_multiproc.Contingency.admits_reconfiguration m
                              table
                          with
                          | Ok () ->
                              Format.printf
                                "reconfiguration admitted: the %d-slot bound \
                                 fits every in-flight invocation's slack@."
                                table
                                  .Rt_multiproc.Contingency.reconfig_bound;
                              true
                          | Error es ->
                              Format.printf
                                "reconfiguration NOT admitted for in-flight \
                                 invocations:@.";
                              List.iter
                                (fun e -> Format.printf "  %s@." e)
                                es;
                              Format.printf
                                "(invocations arriving after the bound are \
                                 still safe)@.";
                              false
                        in
                        match certify_table m table ~admits_ok with
                        | Some code -> code
                        | None ->
                            let net_faults =
                              if msg_loss <= 0.0 then []
                              else
                                Rt_sim.Net_fault.random_plan
                                  (Rt_graph.Prng.create seed)
                                  ~horizon:(2 * horizon) ~loss_rate:msg_loss
                            in
                            let report =
                              try
                                Rt_sim.Dist_runtime.run ?crit ~crashes
                                  ~net_faults ~policy ~heartbeat ~horizon m
                                  table
                              with Invalid_argument msg ->
                                or_die (Error msg)
                            in
                            Format.printf "@.=== replay ===@.%a@."
                              Rt_sim.Dist_runtime.pp_report report;
                            Format.printf "=== per-processor rollup ===@.";
                            List.iter
                              (fun s ->
                                Format.printf "%a@."
                                  Rt_sim.Stats.pp_processor_summary s)
                              (Rt_sim.Stats.by_processor m.Model.comm report);
                            exit_ok)))))
  in
  Cmd.v
    (cmd_info "distsim"
       ~doc:
         "Lockstep multiprocessor replay under processor crashes and bus \
          faults, with heartbeat detection and failover to pre-synthesized \
          contingency schedules.")
    Term.(
      const run $ spec_file $ procs $ msg_cost $ arq $ crash $ msg_loss
      $ policy $ crit_spec $ stretch $ hb_period $ hb_miss $ migration
      $ horizon $ seed $ jobs_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* example                                                             *)
(* ------------------------------------------------------------------ *)

let example_cmd =
  let family =
    Arg.(
      value
      & opt (enum [ ("control", `Control); ("e3", `E3) ]) `Control
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "$(b,control): the paper's example control system; $(b,e3): a \
             Theorem-2 3-PARTITION reduction yes-instance (the NP-hard \
             family of the exact-solver scaling experiment), sized by \
             $(b,--m)/$(b,--b).")
  in
  let m_arg =
    Arg.(
      value & opt int 3
      & info [ "m"; "triples" ] ~docv:"M" ~doc:"E3 family: number of triples.")
  in
  let b_arg =
    Arg.(
      value & opt int 16
      & info [ "b"; "sum" ] ~docv:"B"
          ~doc:"E3 family: triple sum (at least 13).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"E3 family: instance seed.")
  in
  let run family m_triples b seed trace =
    with_trace trace @@ fun () ->
    match family with
    | `Control ->
        let m =
          Rt_workload.Suite.control_system Rt_workload.Suite.default_params
        in
        print_string (Rt_spec.Printer.print ~name:"control" m);
        exit_ok
    | `E3 ->
        if m_triples < 1 then usage_error "--m must be at least 1"
        else if b < 13 then usage_error "--b must be at least 13"
        else begin
          let items =
            Rt_workload.Npc.three_partition_yes
              (Rt_graph.Prng.create seed)
              ~m:m_triples ~b
          in
          let model = Rt_workload.Npc.reduction_model items ~b in
          print_string (Rt_spec.Printer.print ~name:"e3" model);
          exit_ok
        end
  in
  Cmd.v
    (cmd_info "example"
       ~doc:
         "Print an example specification: the paper's control system, or \
          an NP-hard E3 instance.")
    Term.(const run $ family $ m_arg $ b_arg $ seed $ trace_arg)

let () =
  let info =
    Cmd.info "rtsyn" ~version:"1.0.0" ~exits
      ~doc:
        "Synthesis of run-time schedulers from graph-based real-time models \
         (Mok, ICPP 1985)."
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Every schedule rtsyn publishes with exit 0 has been \
             re-validated by an independent certificate checker that \
             shares no code with the synthesis engines beyond the model \
             vocabulary; see docs/CERTIFICATES.md for the format and the \
             trust boundary.";
        ]
  in
  exit
    (match
       Cmd.eval_value
         (Cmd.group info
            [
              check_cmd;
              synth_cmd;
              analyze_cmd;
              admit_cmd;
              gantt_cmd;
              replay_cmd;
              sensitivity_cmd;
              exact_cmd;
              emit_c_cmd;
              simulate_cmd;
              faultsim_cmd;
              distsim_cmd;
              dot_cmd;
              multiproc_cmd;
              example_cmd;
            ])
     with
    | Ok (`Ok code) -> code
    | Ok (`Version | `Help) -> exit_ok
    | Error (`Parse | `Term) -> exit_usage
    | Error `Exn -> exit_internal)
