(* Tests for the synthesis chain: EDF cyclic construction, software
   pipelining, shared-operation merging, the Theorem-3 constructive
   scheduler, and the top-level Synthesis driver. *)

open Rt_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let example = Rt_workload.Suite.control_system Rt_workload.Suite.default_params

(* ------------------------------------------------------------------ *)
(* Edf_cyclic                                                          *)
(* ------------------------------------------------------------------ *)

let comm_ab =
  Comm_graph.create
    ~elements:[ ("a", 1, true); ("b", 2, true) ]
    ~edges:[ ("a", "b") ]

let test_jobs_of_periodic () =
  let c =
    Timing.make ~name:"c"
      ~graph:(Task_graph.of_chain [ 0; 1 ])
      ~period:5 ~deadline:4 ~kind:Timing.Periodic
  in
  let jobs = Edf_cyclic.jobs_of_periodic ~horizon:15 c in
  checki "three invocations" 3 (List.length jobs);
  let j1 = List.nth jobs 1 in
  checki "release" 5 j1.Edf_cyclic.release;
  checki "deadline" 9 j1.Edf_cyclic.abs_deadline

let test_jobs_of_periodic_rejects () =
  let c =
    Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:5 ~deadline:9
      ~kind:Timing.Periodic
  in
  checkb "d > p rejected" true
    (try
       ignore (Edf_cyclic.jobs_of_periodic ~horizon:10 c);
       false
     with Invalid_argument _ -> true);
  let a =
    Timing.make ~name:"a" ~graph:(Task_graph.singleton 0) ~period:5 ~deadline:5
      ~kind:Timing.Asynchronous
  in
  checkb "async rejected" true
    (try
       ignore (Edf_cyclic.jobs_of_periodic ~horizon:10 a);
       false
     with Invalid_argument _ -> true)

let test_edf_build_simple () =
  let c =
    Timing.make ~name:"c"
      ~graph:(Task_graph.of_chain [ 0; 1 ])
      ~period:5 ~deadline:5 ~kind:Timing.Periodic
  in
  let jobs = Edf_cyclic.jobs_of_periodic ~horizon:10 c in
  match Edf_cyclic.build comm_ab ~horizon:10 jobs with
  | Error f -> Alcotest.failf "unexpected failure: %s" f.Edf_cyclic.reason
  | Ok sched ->
      checkb "well-formed" true (Schedule.validate comm_ab sched = Ok ());
      checki "six busy slots" 6 (Schedule.busy_slots sched);
      checkb "a first" true (Schedule.slot sched 0 = Schedule.Run 0);
      checkb "b next" true
        (Schedule.slot sched 1 = Schedule.Run 1
        && Schedule.slot sched 2 = Schedule.Run 1)

let test_edf_overload_fails () =
  let c =
    Timing.make ~name:"c"
      ~graph:(Task_graph.of_chain [ 0; 1 ])
      ~period:2 ~deadline:2 ~kind:Timing.Periodic
  in
  let jobs = Edf_cyclic.jobs_of_periodic ~horizon:4 c in
  match Edf_cyclic.build comm_ab ~horizon:4 jobs with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "3 units of work every 2 slots cannot fit"

let test_edf_priority_order () =
  let comm =
    Comm_graph.create ~elements:[ ("x", 1, true); ("y", 1, true) ] ~edges:[]
  in
  let mk name elem d =
    Timing.make ~name ~graph:(Task_graph.singleton elem) ~period:4 ~deadline:d
      ~kind:Timing.Periodic
  in
  let jobs =
    Edf_cyclic.jobs_of_periodic ~horizon:4 (mk "tight" 1 2)
    @ Edf_cyclic.jobs_of_periodic ~horizon:4 (mk "loose" 0 4)
  in
  match Edf_cyclic.build comm ~horizon:4 jobs with
  | Error f -> Alcotest.failf "failed: %s" f.Edf_cyclic.reason
  | Ok sched ->
      checkb "earliest deadline first" true
        (Schedule.slot sched 0 = Schedule.Run 1)

let test_edf_utilization () =
  let c =
    Timing.make ~name:"c"
      ~graph:(Task_graph.of_chain [ 0; 1 ])
      ~period:5 ~deadline:5 ~kind:Timing.Periodic
  in
  let jobs = Edf_cyclic.jobs_of_periodic ~horizon:10 c in
  Alcotest.check (Alcotest.float 1e-9) "utilization" 0.6
    (Edf_cyclic.utilization comm_ab ~horizon:10 jobs)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_pipeline_rewrite_shapes () =
  let p = Pipeline.rewrite example in
  let pm = p.Pipeline.model in
  checki "six stages" 6 (Comm_graph.n_elements pm.Model.comm);
  checkb "all unit" true
    (List.for_all
       (fun (e : Element.t) -> e.weight = 1)
       (Comm_graph.elements pm.Model.comm));
  let fs = Comm_graph.id_of_name example.Model.comm "f_s" in
  let first = p.Pipeline.first_stage.(fs)
  and last = p.Pipeline.last_stage.(fs) in
  checki "two stages of f_s" 1 (last - first);
  checkb "stage chain edge" true (Comm_graph.has_edge pm.Model.comm first last);
  checkb "origin tracks f_s" true
    (p.Pipeline.origin.(first).Pipeline.orig_elem = fs
    && p.Pipeline.origin.(first).Pipeline.stage = 0
    && p.Pipeline.origin.(last).Pipeline.stage = 1)

let test_pipeline_preserves_times_and_counts () =
  let p = Pipeline.rewrite example in
  let pm = p.Pipeline.model in
  List.iter2
    (fun (c : Timing.t) (c' : Timing.t) ->
      checki
        (c.name ^ " computation time preserved")
        (Timing.computation_time example.Model.comm c)
        (Timing.computation_time pm.Model.comm c');
      checkb "period preserved" true (c.period = c'.period);
      checkb "deadline preserved" true (c.deadline = c'.deadline))
    example.Model.constraints pm.Model.constraints

let test_pipeline_atomic_untouched () =
  let atomic =
    Rt_workload.Suite.control_system
      { Rt_workload.Suite.default_params with pipelinable = false }
  in
  let p = Pipeline.rewrite atomic in
  checki "no new elements" 5 (Comm_graph.n_elements p.Pipeline.model.Model.comm)

let test_is_fully_pipelined () =
  checkb "example has a weight-2 element" false
    (Pipeline.is_fully_pipelined example);
  let p = Pipeline.rewrite example in
  checkb "rewrite makes it fully pipelined" true
    (Pipeline.is_fully_pipelined p.Pipeline.model)

let test_stage_name () =
  Alcotest.check Alcotest.string "single stage keeps name" "f"
    (Pipeline.stage_name "f" 1 1);
  Alcotest.check Alcotest.string "multi stage" "f#2"
    (Pipeline.stage_name "f" 2 3)

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)
(* ------------------------------------------------------------------ *)

let test_merge_equal_rates () =
  let m =
    Rt_workload.Suite.control_system_equal_rates
      Rt_workload.Suite.default_params
  in
  let merged, report = Merge.apply m in
  checki "two constraints left" 2 (List.length merged.Model.constraints);
  checki "one merged group" 1 (List.length report.Merge.merged_groups);
  checki "time before" 11 report.Merge.time_before;
  checki "time after" 8 report.Merge.time_after;
  let mc = List.hd merged.Model.constraints in
  checki "merged graph has 4 nodes" 4 (Task_graph.size mc.Timing.graph);
  checkb "merged is periodic" true (Timing.is_periodic mc)

let test_merge_keeps_different_periods () =
  let _, report = Merge.apply example in
  checkb "nothing merged at distinct rates" true
    (report.Merge.merged_groups = [])

let test_merge_never_touches_async () =
  let comm = Comm_graph.create ~elements:[ ("a", 1, true) ] ~edges:[] in
  let mk kind name =
    Timing.make ~name ~graph:(Task_graph.singleton 0) ~period:10 ~deadline:10
      ~kind
  in
  let m =
    Model.make ~comm
      ~constraints:[ mk Timing.Asynchronous "a1"; mk Timing.Asynchronous "a2" ]
  in
  let merged, report = Merge.apply m in
  checki "both kept" 2 (List.length merged.Model.constraints);
  checkb "no groups" true (report.Merge.merged_groups = [])

let test_merge_rejects_cycle () =
  let comm =
    Comm_graph.create
      ~elements:[ ("a", 1, true); ("b", 1, true) ]
      ~edges:[ ("a", "b"); ("b", "a") ]
  in
  let c1 =
    Timing.make ~name:"c1"
      ~graph:(Task_graph.of_chain [ 0; 1 ])
      ~period:10 ~deadline:10 ~kind:Timing.Periodic
  in
  let c2 =
    Timing.make ~name:"c2"
      ~graph:(Task_graph.of_chain [ 1; 0 ])
      ~period:10 ~deadline:10 ~kind:Timing.Periodic
  in
  checkb "not mergeable" false (Merge.mergeable c1 c2);
  let m = Model.make ~comm ~constraints:[ c1; c2 ] in
  let merged, _ = Merge.apply m in
  checki "kept apart" 2 (List.length merged.Model.constraints)

let test_merge_deadline_is_min () =
  let c1 =
    Timing.make ~name:"c1" ~graph:(Task_graph.singleton 0) ~period:10
      ~deadline:8 ~kind:Timing.Periodic
  in
  let c2 =
    Timing.make ~name:"c2" ~graph:(Task_graph.singleton 1) ~period:10
      ~deadline:6 ~kind:Timing.Periodic
  in
  match Merge.merge_pair c1 c2 with
  | Some mc ->
      checki "min deadline" 6 mc.Timing.deadline;
      checki "same period" 10 mc.Timing.period
  | None -> Alcotest.fail "disjoint singletons must merge"

let test_merge_semantics_preserved () =
  let m =
    Rt_workload.Suite.control_system_equal_rates
      Rt_workload.Suite.default_params
  in
  let merged, _ = Merge.apply m in
  match Synthesis.synthesize ~merge:false ~pipeline:true merged with
  | Error e ->
      Alcotest.failf "merged model should synthesize: %s" e.Synthesis.message
  | Ok plan ->
      let porig = (Pipeline.rewrite m).Pipeline.model in
      let verdicts = Latency.verify porig plan.Synthesis.schedule in
      checkb "original constraints all met" true (Latency.all_ok verdicts)

(* ------------------------------------------------------------------ *)
(* Theorem3                                                            *)
(* ------------------------------------------------------------------ *)

let relaxed_example =
  Rt_workload.Suite.control_system
    {
      Rt_workload.Suite.default_params with
      p_x = 40;
      d_x = 40;
      p_y = 80;
      d_y = 80;
      d_z = 60;
    }

let test_theorem3_constructs () =
  match Theorem3.schedule relaxed_example with
  | Error e -> Alcotest.failf "construction failed: %s" e
  | Ok r ->
      checkb "verdicts all ok" true (Latency.all_ok r.Theorem3.verdicts);
      checki "q for pz" 30 (List.assoc "pz" r.Theorem3.polling_periods);
      checki "q for px" 20 (List.assoc "px" r.Theorem3.polling_periods)

let test_theorem3_rejects_violation () =
  match Theorem3.schedule example with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "default example violates premise (i)"

let test_theorem3_random_always_succeeds () =
  let g = Rt_graph.Prng.create 1234 in
  for i = 1 to 20 do
    let m =
      Rt_workload.Model_gen.theorem3_model g ~n_constraints:(1 + (i mod 4))
        ~max_weight:3
    in
    checkb "premises hold by construction" true (Theorem3.premises_hold m);
    match Theorem3.schedule ~max_hyperperiod:5_000_000 m with
    | Ok r -> checkb "verified" true (Latency.all_ok r.Theorem3.verdicts)
    | Error e -> Alcotest.failf "instance %d failed: %s" i e
  done

(* ------------------------------------------------------------------ *)
(* Synthesis                                                           *)
(* ------------------------------------------------------------------ *)

let test_synthesize_example () =
  match Synthesis.synthesize example with
  | Error e -> Alcotest.failf "synthesis failed: %s" e.Synthesis.message
  | Ok plan ->
      checkb "all verdicts pass" true (Latency.all_ok plan.Synthesis.verdicts);
      checkb "schedule well-formed" true
        (Schedule.validate plan.Synthesis.model_used.Model.comm
           plan.Synthesis.schedule
        = Ok ());
      checki "hyperperiod = schedule length" plan.Synthesis.hyperperiod
        (Schedule.length plan.Synthesis.schedule)

let test_synthesize_without_pipeline () =
  match Synthesis.synthesize ~pipeline:false example with
  | Error e -> Alcotest.failf "synthesis failed: %s" e.Synthesis.message
  | Ok plan ->
      checkb "all verdicts pass" true (Latency.all_ok plan.Synthesis.verdicts)

let test_synthesize_infeasible_async () =
  let comm = Comm_graph.create ~elements:[ ("a", 5, true) ] ~edges:[] in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:10
            ~deadline:3 ~kind:Timing.Asynchronous;
        ]
  in
  match Synthesis.synthesize m with
  | Error e ->
      checkb "polling stage rejects" true (e.Synthesis.stage = "polling")
  | Ok _ -> Alcotest.fail "cannot meet d=3 with w=5"

let test_exact_fallback () =
  (* (a) Heuristic fails (two polling tasks on the same element
     overload EDF) but the model is feasible — schedule [a] serves
     both constraints — and the game engine finds it. *)
  let comm = Comm_graph.create ~elements:[ ("a", 1, true) ] ~edges:[] in
  let c name d =
    Timing.make ~name ~graph:(Task_graph.singleton 0) ~period:10 ~deadline:d
      ~kind:Timing.Asynchronous
  in
  let feas = Model.make ~comm ~constraints:[ c "c1" 1; c "c2" 2 ] in
  (match Synthesis.synthesize feas with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected the polling heuristic to fail here");
  (match Synthesis.synthesize ~exact_fallback:true feas with
  | Ok plan ->
      checkb "rescued plan verifies" true
        (Latency.all_ok plan.Synthesis.verdicts);
      checkb "no polling rewrite" true (plan.Synthesis.polling = [])
  | Error e ->
      Alcotest.failf "fallback should rescue a feasible model, got [%s] %s"
        e.Synthesis.stage e.Synthesis.message);
  (* (b) Provably infeasible single-op model: the fallback upgrades the
     heuristic's error to a definitive stage "exact" proof. *)
  let comm = Comm_graph.create ~elements:[ ("a", 2, true); ("b", 2, true) ] ~edges:[] in
  let op name id =
    Timing.make ~name ~graph:(Task_graph.singleton id) ~period:10 ~deadline:2
      ~kind:Timing.Asynchronous
  in
  let infeas = Model.make ~comm ~constraints:[ op "ca" 0; op "cb" 1 ] in
  (match Synthesis.synthesize infeas with
  | Error e -> checkb "default keeps heuristic stage" true (e.Synthesis.stage <> "exact")
  | Ok _ -> Alcotest.fail "cannot fit two 2-slot executions in every 2-window");
  match Synthesis.synthesize ~exact_fallback:true infeas with
  | Error e -> checkb "upgraded to exact" true (e.Synthesis.stage = "exact")
  | Ok _ -> Alcotest.fail "cannot fit two 2-slot executions in every 2-window"

let test_synthesize_rejects_unconstrained_deadline () =
  let comm = Comm_graph.create ~elements:[ ("a", 1, true) ] ~edges:[] in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:5
            ~deadline:7 ~kind:Timing.Periodic;
        ]
  in
  match Synthesis.synthesize m with
  | Error e ->
      checkb "periodic stage rejects" true (e.Synthesis.stage = "periodic")
  | Ok _ -> Alcotest.fail "d > p must be rejected"

let test_synthesize_overload () =
  let comm =
    Comm_graph.create ~elements:[ ("a", 3, true); ("b", 3, true) ] ~edges:[]
  in
  let mk name elem =
    Timing.make ~name ~graph:(Task_graph.singleton elem) ~period:4 ~deadline:4
      ~kind:Timing.Periodic
  in
  let m = Model.make ~comm ~constraints:[ mk "ca" 0; mk "cb" 1 ] in
  match Synthesis.synthesize m with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "utilization 1.5 cannot be scheduled"

let test_offsets_enable_staggering () =
  (* Two weight-3 ops, each with deadline 4 and period 8: released
     together they demand 6 units in a 4-slot window — impossible;
     staggered by half a period they fit exactly. *)
  let comm =
    Comm_graph.create ~elements:[ ("a", 3, true); ("b", 3, true) ] ~edges:[]
  in
  let mk name elem offset =
    let c =
      Timing.make ~name ~graph:(Task_graph.singleton elem) ~period:8
        ~deadline:4 ~kind:Timing.Periodic
    in
    if offset = 0 then c else Timing.with_offset c offset
  in
  let together =
    Model.make ~comm ~constraints:[ mk "ca" 0 0; mk "cb" 1 0 ]
  in
  (match Synthesis.synthesize together with
  | Ok _ -> Alcotest.fail "synchronous release cannot fit 6 units in 4 slots"
  | Error _ -> ());
  let staggered =
    Model.make ~comm ~constraints:[ mk "ca" 0 0; mk "cb" 1 4 ]
  in
  match Synthesis.synthesize staggered with
  | Ok plan ->
      checkb "verdicts pass" true (Latency.all_ok plan.Synthesis.verdicts);
      (* b must not run before its offset within each period. *)
      checkb "b starts in the second half" true
        (match Schedule.slot plan.Synthesis.schedule 0 with
        | Schedule.Run e ->
            (Comm_graph.element comm e).Element.name = "a"
        | Schedule.Idle -> false)
  | Error e -> Alcotest.failf "staggered model must fit: %s" e.Synthesis.message

let test_dm_backend () =
  (* The classic EDF-beats-fixed-priority pair: c/p = 2/4 and 4/8 at
     utilization 1.0.  EDF fits; DM misses (the long job is starved
     whenever the short one re-releases... actually DM schedules this
     harmonic pair; use the non-harmonic 1/3+1/4+2/5 set where RM/DM
     provably fails). *)
  let comm =
    Comm_graph.create
      ~elements:[ ("x", 1, true); ("y", 1, true); ("z", 2, true) ]
      ~edges:[]
  in
  let mk name elem p =
    Timing.make ~name ~graph:(Task_graph.singleton elem) ~period:p ~deadline:p
      ~kind:Timing.Periodic
  in
  let m =
    Model.make ~comm ~constraints:[ mk "cx" 0 3; mk "cy" 1 4; mk "cz" 2 5 ]
  in
  (match Synthesis.synthesize ~backend:Edf_cyclic.Edf m with
  | Ok plan -> checkb "EDF verdicts" true (Latency.all_ok plan.Synthesis.verdicts)
  | Error e -> Alcotest.failf "EDF backend must fit U=0.983: %s" e.Synthesis.message);
  match Synthesis.synthesize ~backend:Edf_cyclic.Dm m with
  | Ok _ -> Alcotest.fail "DM cannot schedule 1/3 + 1/4 + 2/5"
  | Error _ -> ()

let test_dm_backend_agrees_on_easy () =
  let g = Rt_graph.Prng.create 3131 in
  for _ = 1 to 10 do
    let m =
      Rt_workload.Model_gen.periodic_chain_model g ~n_constraints:3
        ~utilization:0.5 ~periods:[ 8; 16 ]
    in
    match Synthesis.synthesize ~backend:Edf_cyclic.Dm m with
    | Ok plan ->
        checkb "DM plan verifies" true (Latency.all_ok plan.Synthesis.verdicts)
    | Error _ ->
        (* Low utilization: EDF must also fail for this to be fair. *)
        checkb "EDF also fails" true
          (match Synthesis.synthesize m with Ok _ -> false | Error _ -> true)
  done

let test_synthesized_schedule_against_runtime () =
  match Synthesis.synthesize example with
  | Error e -> Alcotest.failf "synthesis failed: %s" e.Synthesis.message
  | Ok plan ->
      let m = plan.Synthesis.model_used in
      let g = Rt_graph.Prng.create 77 in
      for _ = 1 to 10 do
        let pz = Model.find m "pz" in
        let arrivals =
          Rt_sim.Arrivals.adversarial_phases g ~horizon:400
            ~separation:pz.Timing.period
        in
        let report =
          Rt_sim.Runtime.run m plan.Synthesis.schedule ~horizon:400
            ~arrivals:[ ("pz", arrivals) ]
        in
        checki "no misses" 0 report.Rt_sim.Runtime.misses
      done

(* ------------------------------------------------------------------ *)
(* Polling candidates                                                  *)
(* ------------------------------------------------------------------ *)

let candidates = Alcotest.(list (pair int int))

let test_polling_candidates_order () =
  (* Pins the exact candidate order the synthesis loop tries: largest
     polling period first (cheapest), equal periods by ascending
     relative deadline, no duplicates.  Guards the single-comparator
     dedup against regressions — the round-robin over these lists is
     what makes synthesis results reproducible. *)
  Alcotest.check candidates "w=1 d=15"
    [ (15, 1); (11, 5); (8, 8) ]
    (Synthesis.polling_candidates ~w:1 ~d:15);
  Alcotest.check candidates "w=3 d=12"
    [ (10, 3); (8, 5); (7, 6); (4, 4) ]
    (Synthesis.polling_candidates ~w:3 ~d:12);
  Alcotest.check candidates "w=1 d=10"
    [ (10, 1); (8, 3); (6, 5); (4, 4) ]
    (Synthesis.polling_candidates ~w:1 ~d:10);
  Alcotest.check candidates "w=2 d=4"
    [ (3, 2); (2, 2) ]
    (Synthesis.polling_candidates ~w:2 ~d:4);
  Alcotest.check candidates "degenerate w=1 d=1" [ (1, 1) ]
    (Synthesis.polling_candidates ~w:1 ~d:1);
  Alcotest.check candidates "infeasible w>d" []
    (Synthesis.polling_candidates ~w:4 ~d:3)

let test_polling_candidates_invariants () =
  for w = 1 to 6 do
    for d = 1 to 40 do
      let cs = Synthesis.polling_candidates ~w ~d in
      if w > d then checkb "empty when w>d" true (cs = []);
      let rec ordered = function
        | (qa, da) :: ((qb, db) :: _ as rest) ->
            (qa > qb || (qa = qb && da < db)) && ordered rest
        | _ -> true
      in
      checkb "strictly ordered (so duplicate-free)" true (ordered cs);
      List.iter
        (fun (q, dl) ->
          checkb "feasible window" true (dl >= w && dl <= q && q + dl <= d + 1))
        cs
    done
  done

let () =
  Alcotest.run "rt_core-synthesis"
    [
      ( "edf_cyclic",
        [
          Alcotest.test_case "jobs of periodic" `Quick test_jobs_of_periodic;
          Alcotest.test_case "rejections" `Quick test_jobs_of_periodic_rejects;
          Alcotest.test_case "build simple" `Quick test_edf_build_simple;
          Alcotest.test_case "overload fails" `Quick test_edf_overload_fails;
          Alcotest.test_case "priority order" `Quick test_edf_priority_order;
          Alcotest.test_case "utilization" `Quick test_edf_utilization;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "rewrite shapes" `Quick
            test_pipeline_rewrite_shapes;
          Alcotest.test_case "times preserved" `Quick
            test_pipeline_preserves_times_and_counts;
          Alcotest.test_case "atomic untouched" `Quick
            test_pipeline_atomic_untouched;
          Alcotest.test_case "is_fully_pipelined" `Quick
            test_is_fully_pipelined;
          Alcotest.test_case "stage_name" `Quick test_stage_name;
        ] );
      ( "merge",
        [
          Alcotest.test_case "equal rates merge" `Quick test_merge_equal_rates;
          Alcotest.test_case "different periods kept" `Quick
            test_merge_keeps_different_periods;
          Alcotest.test_case "async untouched" `Quick
            test_merge_never_touches_async;
          Alcotest.test_case "cycle rejected" `Quick test_merge_rejects_cycle;
          Alcotest.test_case "deadline is min" `Quick
            test_merge_deadline_is_min;
          Alcotest.test_case "semantics preserved" `Quick
            test_merge_semantics_preserved;
        ] );
      ( "theorem3",
        [
          Alcotest.test_case "constructs" `Quick test_theorem3_constructs;
          Alcotest.test_case "rejects violations" `Quick
            test_theorem3_rejects_violation;
          Alcotest.test_case "random instances" `Slow
            test_theorem3_random_always_succeeds;
        ] );
      ( "polling candidates",
        [
          Alcotest.test_case "pinned order" `Quick
            test_polling_candidates_order;
          Alcotest.test_case "invariants" `Quick
            test_polling_candidates_invariants;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "example" `Quick test_synthesize_example;
          Alcotest.test_case "without pipelining" `Quick
            test_synthesize_without_pipeline;
          Alcotest.test_case "infeasible async" `Quick
            test_synthesize_infeasible_async;
          Alcotest.test_case "exact fallback" `Quick test_exact_fallback;
          Alcotest.test_case "unconstrained deadline" `Quick
            test_synthesize_rejects_unconstrained_deadline;
          Alcotest.test_case "overload" `Quick test_synthesize_overload;
          Alcotest.test_case "offsets enable staggering" `Quick
            test_offsets_enable_staggering;
          Alcotest.test_case "DM backend" `Quick test_dm_backend;
          Alcotest.test_case "DM on easy models" `Quick
            test_dm_backend_agrees_on_easy;
          Alcotest.test_case "runtime end-to-end" `Slow
            test_synthesized_schedule_against_runtime;
        ] );
    ]
