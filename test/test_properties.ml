(* Cross-module property tests: invariants that tie the synthesis
   pipeline, the analyses and the persistence layer together on random
   models.  These run fewer iterations than unit-level qcheck tests
   because each case synthesizes and verifies whole schedules. *)

open Rt_core

let checkb = Alcotest.check Alcotest.bool

let seeded_prng =
  (* Each property gets its own deterministic stream. *)
  fun seed -> Rt_graph.Prng.create seed

(* 1. Theorem-3 models: construct -> trim -> still verified, never
   longer. *)
let prop_trim_preserves_feasibility () =
  let g = seeded_prng 101 in
  for _ = 1 to 15 do
    let m = Rt_workload.Model_gen.theorem3_model g ~n_constraints:3 ~max_weight:2 in
    match Theorem3.schedule m with
    | Error e -> Alcotest.failf "construction failed: %s" e
    | Ok r when Schedule.length r.Theorem3.schedule > 64 ->
        (* Trimming re-verifies per removal; keep the property cheap by
           only exercising small cycles. *)
        ()
    | Ok r ->
        let pm = r.Theorem3.pipelined.Pipeline.model in
        let trimmed, report =
          Optimize.trim_idle ~max_rounds:1 pm r.Theorem3.schedule
        in
        checkb "trimmed verifies" true
          (Latency.all_ok (Latency.verify pm trimmed));
        checkb "never longer" true
          (Schedule.length trimmed <= Schedule.length r.Theorem3.schedule);
        checkb "report adds up" true
          (report.Optimize.optimized_length
           + report.Optimize.removed_idle
          = report.Optimize.original_length)
  done

(* 2. Synthesized plans survive persistence round-trips. *)
let prop_persist_roundtrip_random () =
  let g = seeded_prng 202 in
  for _ = 1 to 10 do
    let m =
      Rt_workload.Model_gen.shared_block_model g
        ~n_pairs:(1 + Rt_graph.Prng.int g 3)
        ~shared_weight:2 ~private_weight:1
        ~period:(12 + (4 * Rt_graph.Prng.int g 3))
    in
    match Synthesis.synthesize m with
    | Error _ -> () (* some random workloads are simply infeasible *)
    | Ok plan -> (
        let text =
          Rt_spec.Persist.save_string plan.Synthesis.model_used
            plan.Synthesis.schedule
        in
        match Rt_spec.Persist.load_string text with
        | Error e -> Alcotest.failf "round-trip failed: %s" e
        | Ok (m', sched') ->
            checkb "reloaded plan verifies" true
              (Latency.all_ok (Latency.verify m' sched')))
  done

(* 3. Gantt rows are faithful: '#' count per element = slot count. *)
let prop_gantt_faithful () =
  let g = seeded_prng 303 in
  for _ = 1 to 20 do
    let n_elems = 2 + Rt_graph.Prng.int g 3 in
    let comm =
      Comm_graph.create
        ~elements:(List.init n_elems (fun i -> (Printf.sprintf "e%d" i, 1, true)))
        ~edges:[]
    in
    let len = 5 + Rt_graph.Prng.int g 20 in
    let slots =
      List.init len (fun _ ->
          if Rt_graph.Prng.chance g 0.3 then Schedule.Idle
          else Schedule.Run (Rt_graph.Prng.int g n_elems))
    in
    let sched = Schedule.of_slots slots in
    let rendered = Gantt.render ~width:1000 comm sched in
    List.iteri
      (fun e _ ->
        let name = Printf.sprintf "e%d" e in
        let row =
          String.split_on_char '\n' rendered
          |> List.find_opt (fun l ->
                 String.length l > String.length name
                 && String.sub l 0 (String.length name) = name)
        in
        let occ = Schedule.occurrences sched e in
        match row with
        | Some r ->
            let hashes =
              String.fold_left
                (fun acc c -> if c = '#' then acc + 1 else acc)
                0 r
            in
            Alcotest.(check int) "hash count = occurrences" occ hashes
        | None -> checkb "row present iff element used" true (occ = 0))
      (List.init n_elems Fun.id)
  done

(* 4. Canonical rotation: idempotent and invariant across the rotation
   class. *)
let prop_canonical_rotation () =
  let g = seeded_prng 404 in
  for _ = 1 to 50 do
    let len = 1 + Rt_graph.Prng.int g 8 in
    let slots =
      List.init len (fun _ ->
          if Rt_graph.Prng.chance g 0.3 then Schedule.Idle
          else Schedule.Run (Rt_graph.Prng.int g 3))
    in
    let sched = Schedule.of_slots slots in
    let canon = Optimize.canonical_rotation sched in
    checkb "idempotent" true
      (Schedule.equal canon (Optimize.canonical_rotation canon));
    let k = Rt_graph.Prng.int g len in
    checkb "class invariant" true
      (Schedule.equal canon (Optimize.canonical_rotation (Schedule.rotate sched k)))
  done

(* 5. The admission test's Impossible verdict is consistent with the
   exact single-op solver. *)
let prop_admission_consistent_with_exact () =
  let g = seeded_prng 505 in
  for _ = 1 to 30 do
    let m =
      Rt_workload.Model_gen.single_op_model ~max_deadline:12 g
        ~n_constraints:(1 + Rt_graph.Prng.int g 3)
        ~max_weight:3
        ~target_ratio_sum:(0.3 +. Rt_graph.Prng.float g 1.2)
    in
    match (Admission.admit m, (Exact.solve_single_ops m).Exact.outcome) with
    | Admission.Impossible why, Exact.Feasible _ ->
        Alcotest.failf "admission said impossible (%s) but a schedule exists"
          why
    | _ -> ()
  done

(* 6. Merge soundness on random shared workloads: a schedule verified
   for the merged model also verifies the original constraints. *)
let prop_merge_sound () =
  let g = seeded_prng 606 in
  for _ = 1 to 10 do
    let m =
      Rt_workload.Model_gen.shared_block_model g ~n_pairs:2 ~shared_weight:2
        ~private_weight:1 ~period:14
    in
    let merged, _ = Merge.apply m in
    match Synthesis.synthesize ~merge:false merged with
    | Error _ -> ()
    | Ok plan ->
        (* Verify the ORIGINAL constraints (pipelined to match the
           plan's element space). *)
        let original_pipelined = (Pipeline.rewrite m).Pipeline.model in
        checkb "original constraints hold" true
          (Latency.all_ok
             (Latency.verify original_pipelined plan.Synthesis.schedule))
  done

(* 7. Synthesized plans never miss under adversarial arrivals (random
   models with one async constraint). *)
let prop_no_misses_adversarial () =
  let g = seeded_prng 707 in
  for _ = 1 to 8 do
    let m = Rt_workload.Model_gen.theorem3_model g ~n_constraints:2 ~max_weight:2 in
    match Synthesis.synthesize m with
    | Error _ -> ()
    | Ok plan ->
        let mu = plan.Synthesis.model_used in
        List.iter
          (fun (c : Timing.t) ->
            let arrivals =
              Rt_sim.Arrivals.adversarial_phases g ~horizon:300
                ~separation:c.period
            in
            let r =
              Rt_sim.Runtime.run mu plan.Synthesis.schedule ~horizon:300
                ~arrivals:[ (c.name, arrivals) ]
            in
            Alcotest.(check int) "no misses" 0 r.Rt_sim.Runtime.misses)
          (Model.asynchronous mu)
  done

(* 8. Parser robustness: random byte strings and mutated valid specs
   either parse or fail with a positioned diagnostic — never crash with
   anything else. *)
let prop_parser_total () =
  let g = seeded_prng 808 in
  let valid =
    Rt_spec.Printer.print
      (Rt_workload.Suite.control_system Rt_workload.Suite.default_params)
  in
  for _ = 1 to 200 do
    let input =
      if Rt_graph.Prng.bool g then
        (* Random printable garbage. *)
        String.init
          (Rt_graph.Prng.int g 80)
          (fun _ -> Char.chr (32 + Rt_graph.Prng.int g 95))
      else begin
        (* Mutate the valid spec: delete or duplicate a random chunk. *)
        let n = String.length valid in
        let i = Rt_graph.Prng.int g n in
        let len = Rt_graph.Prng.int g (min 20 (n - i)) in
        if Rt_graph.Prng.bool g then
          String.sub valid 0 i ^ String.sub valid (i + len) (n - i - len)
        else
          String.sub valid 0 (i + len)
          ^ String.sub valid i (n - i)
      end
    in
    match Rt_spec.Elaborate.load input with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "parser raised %s on %S" (Printexc.to_string e) input
  done

(* 9. Scale: a 40-constraint periodic system synthesizes and verifies
   within a few seconds (heap-based EDF + breakpoint latency). *)
let prop_scales_to_wide_models () =
  (* Integer rounding in the generator can push the realized
     utilization of 40 small constraints past 1.0, so the oracle is the
     realized utilization itself: implicit-deadline periodic chains are
     EDF-feasible iff U <= 1. *)
  let g = seeded_prng 909 in
  for _ = 1 to 5 do
    let m =
      Rt_workload.Model_gen.periodic_chain_model g ~n_constraints:40
        ~utilization:0.5 ~periods:[ 128; 256 ]
    in
    let u = Model.utilization m in
    match Synthesis.synthesize m with
    | Ok plan ->
        checkb "only feasible loads succeed" true (u <= 1.0 +. 1e-9);
        checkb "verified at scale" true
          (Latency.all_ok plan.Synthesis.verdicts);
        checkb "hyperperiod is the lcm" true (plan.Synthesis.hyperperiod = 256)
    | Error e ->
        if u <= 1.0 +. 1e-9 then
          Alcotest.failf "U=%.3f <= 1 must synthesize: %s" u
            e.Synthesis.message
  done

(* 10. Schedule.validate agrees with the trace semantics: for random
   schedules over one atomic element, well-formedness holds iff every
   canonical instance over two unrolled cycles is contiguous. *)
let prop_validate_matches_canonical_contiguity () =
  let g = seeded_prng 1111 in
  let comm = Comm_graph.create ~elements:[ ("c", 2, false) ] ~edges:[] in
  for _ = 1 to 200 do
    let len = 2 + Rt_graph.Prng.int g 8 in
    let slots =
      List.init len (fun _ ->
          if Rt_graph.Prng.chance g 0.5 then Schedule.Run 0 else Schedule.Idle)
    in
    let sched = Schedule.of_slots slots in
    let occ = Schedule.occurrences sched 0 in
    let valid = Schedule.validate comm sched = Ok () in
    if occ mod 2 = 0 then begin
      (* Whole executions per cycle: validity must equal canonical
         contiguity of every instance. *)
      let tr = Trace.of_schedule comm sched ~horizon:(2 * len) in
      let contiguous =
        Array.for_all
          (fun (i : Trace.instance) -> i.finish - i.start = 2)
          (Trace.instances tr 0)
      in
      if valid <> contiguous then
        Alcotest.failf "disagreement on %s: validate=%b contiguous=%b"
          (Schedule.to_string comm sched) valid contiguous
    end
    else Alcotest.(check bool) "odd slot count invalid" false valid
  done

(* 11. Decomposition partitions the constraint set and refines
   interaction connectivity: components are disjoint, cover every
   constraint, never share an element, and two constraints whose task
   graphs share an element always land in the same component. *)
let prop_decompose_partitions () =
  let g = seeded_prng 1212 in
  for _ = 1 to 50 do
    let n_elems = 3 + Rt_graph.Prng.int g 5 in
    let comm =
      Comm_graph.create
        ~elements:(List.init n_elems (fun i -> (Printf.sprintf "e%d" i, 1, true)))
        ~edges:
          (List.init (n_elems - 1) (fun i ->
               (Printf.sprintf "e%d" i, Printf.sprintf "e%d" (i + 1))))
    in
    let n_cons = 2 + Rt_graph.Prng.int g 5 in
    let constraints =
      List.init n_cons (fun i ->
          let s = Rt_graph.Prng.int g n_elems in
          let len = 1 + Rt_graph.Prng.int g (min 3 (n_elems - s)) in
          let graph = Task_graph.of_chain (List.init len (fun k -> s + k)) in
          Timing.make
            ~name:(Printf.sprintf "c%d" i)
            ~graph
            ~period:(24 + Rt_graph.Prng.int g 16)
            ~deadline:(4 + Rt_graph.Prng.int g 8)
            ~kind:Timing.Asynchronous)
    in
    let m = Model.make ~comm ~constraints in
    let comps = Decompose.components m in
    (* Partition: ascending disjoint indices covering 0..n_cons-1. *)
    let covered = List.concat_map (fun c -> c.Decompose.indices) comps in
    Alcotest.(check (list int))
      "indices cover the constraint list exactly once"
      (List.init n_cons Fun.id)
      (List.sort compare covered);
    (* Refinement: no element belongs to two components. *)
    let elems = List.concat_map (fun c -> c.Decompose.elements) comps in
    Alcotest.(check (list int))
      "components never share an element"
      (List.sort_uniq compare elems)
      (List.sort compare elems);
    (* Connectivity: element-sharing constraints share a component. *)
    let comp_of = Array.make n_cons (-1) in
    List.iter
      (fun c ->
        List.iter (fun i -> comp_of.(i) <- c.Decompose.rank) c.Decompose.indices)
      comps;
    let elem_sets =
      Array.of_list
        (List.map
           (fun (c : Timing.t) ->
             List.sort_uniq compare (Task_graph.elements_used c.Timing.graph))
           constraints)
    in
    for i = 0 to n_cons - 1 do
      for j = i + 1 to n_cons - 1 do
        let share =
          List.exists (fun e -> List.mem e elem_sets.(j)) elem_sets.(i)
        in
        if share then
          Alcotest.(check int)
            (Printf.sprintf "c%d and c%d share an element, same component" i j)
            comp_of.(i) comp_of.(j)
      done
    done
  done

(* 12. On a fully coupled model (one interaction component) the
   decomposition pass is an accelerator with nothing to accelerate: the
   decomposed pipeline must return a bit-identical plan (or the same
   failure stage) as the undecomposed one, sequentially and on a
   4-domain pool alike. *)
let prop_decompose_single_component_identity () =
  let g = seeded_prng 1313 in
  for _ = 1 to 8 do
    let m =
      Rt_workload.Model_gen.shared_block_model g
        ~n_pairs:(1 + Rt_graph.Prng.int g 3)
        ~shared_weight:2 ~private_weight:1
        ~period:(12 + (4 * Rt_graph.Prng.int g 3))
    in
    if List.length (Decompose.components m) = 1 then begin
      let plain = Synthesis.synthesize ~decompose:false m in
      let dec1 = Synthesis.synthesize ~decompose:true m in
      let dec4 =
        Rt_par.Pool.with_pool ~jobs:4 (fun pool ->
            Synthesis.synthesize ~pool ~decompose:true m)
      in
      List.iter
        (fun (label, dec) ->
          match (plain, dec) with
          | Ok p, Ok d ->
              checkb (label ^ ": schedules bit-identical") true
                (Schedule.equal p.Synthesis.schedule d.Synthesis.schedule);
              Alcotest.(check int)
                (label ^ ": hyperperiods equal")
                p.Synthesis.hyperperiod d.Synthesis.hyperperiod
          | Error p, Error d ->
              Alcotest.(check string)
                (label ^ ": failure stages equal")
                p.Synthesis.stage d.Synthesis.stage
          | Ok _, Error d ->
              Alcotest.failf "%s: decomposed failed where plain succeeded: %s"
                label d.Synthesis.message
          | Error p, Ok _ ->
              Alcotest.failf "%s: decomposed succeeded where plain failed: %s"
                label p.Synthesis.message)
        [ ("jobs=1", dec1); ("jobs=4", dec4) ]
    end
  done

(* 13. Fail-closed contract of the decomposed pipeline on random
   loosely-coupled models: either the plan's interleaved schedule
   verifies against the whole model it was built for, or synthesis
   reports a structured error (named stage, non-empty message) — never
   an unverified schedule, never an exception. *)
let prop_decompose_fail_closed () =
  let g = seeded_prng 1414 in
  for _ = 1 to 10 do
    let n_comp = 2 + Rt_graph.Prng.int g 3 in
    let comm =
      Comm_graph.create
        ~elements:(List.init n_comp (fun i -> (Printf.sprintf "u%d" i, 1, true)))
        ~edges:[]
    in
    let constraints =
      List.init n_comp (fun i ->
          Timing.make
            ~name:(Printf.sprintf "a%d" i)
            ~graph:(Task_graph.singleton i)
            ~period:(24 + (8 * Rt_graph.Prng.int g 4))
            ~deadline:(3 + Rt_graph.Prng.int g 10)
            ~kind:Timing.Asynchronous)
    in
    let m = Model.make ~comm ~constraints in
    match Synthesis.synthesize ~decompose:true m with
    | Ok plan ->
        checkb "decomposed plan verifies against its whole model" true
          (Latency.all_ok
             (Latency.verify plan.Synthesis.model_used plan.Synthesis.schedule))
    | Error e ->
        checkb "structured error names its stage" true (e.Synthesis.stage <> "");
        checkb "structured error carries a message" true
          (e.Synthesis.message <> "")
    | exception exn ->
        Alcotest.failf "decomposed synthesis raised %s" (Printexc.to_string exn)
  done

let () =
  Alcotest.run "cross-module-properties"
    [
      ( "properties",
        [
          Alcotest.test_case "trim preserves feasibility" `Slow
            prop_trim_preserves_feasibility;
          Alcotest.test_case "persist round-trip" `Slow
            prop_persist_roundtrip_random;
          Alcotest.test_case "gantt faithful" `Quick prop_gantt_faithful;
          Alcotest.test_case "canonical rotation" `Quick
            prop_canonical_rotation;
          Alcotest.test_case "admission vs exact" `Slow
            prop_admission_consistent_with_exact;
          Alcotest.test_case "merge sound" `Slow prop_merge_sound;
          Alcotest.test_case "adversarial no misses" `Slow
            prop_no_misses_adversarial;
          Alcotest.test_case "parser is total" `Quick prop_parser_total;
          Alcotest.test_case "scales to wide models" `Slow
            prop_scales_to_wide_models;
          Alcotest.test_case "validate matches canonical contiguity" `Quick
            prop_validate_matches_canonical_contiguity;
          Alcotest.test_case "decomposition partitions constraints" `Quick
            prop_decompose_partitions;
          Alcotest.test_case "single-component decomposed identity" `Slow
            prop_decompose_single_component_identity;
          Alcotest.test_case "decomposed synthesis fails closed" `Slow
            prop_decompose_fail_closed;
        ] );
    ]
