(* Tests for the parallel execution layer (Rt_par) and the determinism
   contract of every engine that uses it: with a pool and without one,
   the exact solvers, the synthesis pipeline and the contingency tables
   must produce bit-identical results.  The equality properties here
   are the CI gate for the parallel engine — their names are grepped by
   the workflow, so keep them stable. *)

open Rt_core
module Pool = Rt_par.Pool
module Bound = Rt_par.Bound
module Perf = Rt_par.Perf

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_map_preserves_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      let a = Array.init 100 Fun.id in
      let r = Pool.parallel_map p (fun x -> x * x) a in
      Alcotest.(check (array int)) "squares in order"
        (Array.init 100 (fun i -> i * i))
        r)

let test_map_empty_and_single () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check (array int)) "empty" [||]
        (Pool.parallel_map p (fun x -> x) [||]);
      Alcotest.(check (array int)) "single" [| 7 |]
        (Pool.parallel_map p (fun x -> x + 1) [| 6 |]))

let test_find_first_lowest_index () =
  Pool.with_pool ~jobs:4 (fun p ->
      (* Matches at indices 3, 7 and 50: the contract is lowest index
         wins, regardless of which lane finishes first. *)
      let f i = if i = 3 || i = 7 || i = 50 then Some (i * 10) else None in
      checki "lowest match" 30
        (Option.get (Pool.parallel_find_first p f (Array.init 64 Fun.id))))

let test_find_first_none () =
  Pool.with_pool ~jobs:4 (fun p ->
      checkb "no match" true
        (Pool.parallel_find_first p (fun _ -> None) (Array.init 20 Fun.id)
        = None))

let test_nested_fanout_runs_inline () =
  (* A task submitted from inside a pool task must not deadlock: the
     inner fan-out runs inline on the submitting domain. *)
  Pool.with_pool ~jobs:3 (fun p ->
      let r =
        Pool.parallel_map p
          (fun i ->
            let inner =
              Pool.parallel_map p (fun j -> (10 * i) + j) (Array.init 4 Fun.id)
            in
            Array.fold_left ( + ) 0 inner)
          (Array.init 8 Fun.id)
      in
      Alcotest.(check (array int)) "nested totals"
        (Array.init 8 (fun i -> (40 * i) + 6))
        r)

exception Boom

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun p ->
      checkb "raises" true
        (try
           ignore
             (Pool.parallel_map p
                (fun i -> if i = 13 then raise Boom else i)
                (Array.init 32 Fun.id));
           false
         with Boom -> true);
      (* The pool must survive a failed job and accept new work. *)
      checki "still works" 10
        (Array.fold_left ( + ) 0
           (Pool.parallel_map p Fun.id (Array.init 5 Fun.id))))

let test_jobs_clamped () =
  Pool.with_pool ~jobs:1 (fun p -> checki "one lane" 1 (Pool.jobs p));
  Pool.with_pool ~jobs:0 (fun p -> checki "clamped up" 1 (Pool.jobs p))

(* ------------------------------------------------------------------ *)
(* Bound                                                               *)
(* ------------------------------------------------------------------ *)

let test_bound_monotone_min () =
  let b = Bound.create () in
  checkb "initially unset" false (Bound.found b);
  Bound.update_min b 42;
  Bound.update_min b 17;
  Bound.update_min b 99;
  checki "keeps the minimum" 17 (Bound.get b);
  Bound.reset b;
  checkb "reset clears" false (Bound.found b)

(* ------------------------------------------------------------------ *)
(* Perf                                                                *)
(* ------------------------------------------------------------------ *)

let test_perf_counters () =
  Perf.reset ();
  Perf.incr Perf.cache_hits;
  Perf.add Perf.cache_hits 4;
  checki "accumulates" 5 (Perf.value Perf.cache_hits);
  let x = Perf.time "stage-a" (fun () -> 41 + 1) in
  checki "time passes result through" 42 x;
  checkb "stage recorded" true
    (List.mem_assoc "stage-a" (Perf.stage_seconds ()));
  Perf.reset ();
  checki "reset zeroes" 0 (Perf.value Perf.cache_hits)

(* ------------------------------------------------------------------ *)
(* Plan equality: pooled engines = sequential engines                  *)
(* ------------------------------------------------------------------ *)

let outcome_equal a b =
  match (a, b) with
  | Exact.Feasible sa, Exact.Feasible sb -> Schedule.equal sa sb
  | Exact.Infeasible, Exact.Infeasible -> true
  | Exact.Unknown la, Exact.Unknown lb -> la = lb
  | _ -> false

let test_parallel_exact_equals_sequential () =
  let prng = Rt_graph.Prng.create 6001 in
  Pool.with_pool ~jobs:4 (fun p ->
      for _ = 1 to 8 do
        let m =
          Rt_workload.Model_gen.unit_chain_model prng
            ~n_constraints:(1 + Rt_graph.Prng.int prng 3)
            ~n_elements:3 ~max_deadline:6
        in
        let seq = Exact.enumerate ~max_len:5 m in
        let par = Exact.enumerate ~pool:p ~max_len:5 m in
        checkb "same outcome" true
          (outcome_equal seq.Exact.outcome par.Exact.outcome)
      done;
      (* The atomic-execution enumerator too, on a weighted model. *)
      let m = Rt_workload.Suite.control_system Rt_workload.Suite.default_params in
      let seq = Exact.enumerate_atomic ~max_len:8 m in
      let par = Exact.enumerate_atomic ~pool:p ~max_len:8 m in
      checkb "atomic same outcome" true
        (outcome_equal seq.Exact.outcome par.Exact.outcome))

let plan_equal (a : Synthesis.plan) (b : Synthesis.plan) =
  Schedule.equal a.Synthesis.schedule b.Synthesis.schedule
  && a.Synthesis.hyperperiod = b.Synthesis.hyperperiod
  && a.Synthesis.verdicts = b.Synthesis.verdicts

let test_parallel_synthesis_equals_sequential () =
  let prng = Rt_graph.Prng.create 6002 in
  Pool.with_pool ~jobs:4 (fun p ->
      for _ = 1 to 10 do
        let m =
          Rt_workload.Model_gen.shared_block_model prng
            ~n_pairs:(1 + Rt_graph.Prng.int prng 3)
            ~shared_weight:2 ~private_weight:1
            ~period:(12 + (4 * Rt_graph.Prng.int prng 4))
        in
        match (Synthesis.synthesize m, Synthesis.synthesize ~pool:p m) with
        | Ok a, Ok b -> checkb "same plan" true (plan_equal a b)
        | Error ea, Error eb ->
            checkb "same error stage" true (ea.Synthesis.stage = eb.Synthesis.stage)
        | _ -> Alcotest.fail "feasibility diverged under the pool"
      done)

let test_parallel_contingency_equals_sequential () =
  let module Cg = Rt_multiproc.Contingency in
  let module Ms = Rt_multiproc.Msched in
  let m = Rt_workload.Suite.replicated_control ~n:3 in
  let nominal =
    match Ms.synthesize ~n_procs:3 ~msg_cost:1 m with
    | Ok r -> r
    | Error e -> Alcotest.fail ("nominal synthesis: " ^ e)
  in
  let seq =
    match Cg.synthesize ~detect_bound:2 m nominal with
    | Ok t -> t
    | Error e -> Alcotest.fail ("sequential contingency: " ^ e)
  in
  let par =
    Pool.with_pool ~jobs:4 (fun p ->
        match Cg.synthesize ~pool:p ~detect_bound:2 m nominal with
        | Ok t -> t
        | Error e -> Alcotest.fail ("pooled contingency: " ^ e))
  in
  let scenario_equal a b =
    match (a, b) with
    | Ok (sa : Cg.scenario), Ok (sb : Cg.scenario) ->
        sa.Cg.dead = sb.Cg.dead
        && sa.Cg.threshold = sb.Cg.threshold
        && sa.Cg.dropped = sb.Cg.dropped
        && sa.Cg.stretched = sb.Cg.stretched
        && Array.for_all2 Schedule.equal
             sa.Cg.result.Ms.processor_schedules
             sb.Cg.result.Ms.processor_schedules
    | Error ea, Error eb -> ea = eb
    | _ -> false
  in
  checki "same scenario count" (Array.length seq.Cg.scenarios)
    (Array.length par.Cg.scenarios);
  checkb "same table" true
    (Array.for_all2 scenario_equal seq.Cg.scenarios par.Cg.scenarios)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick
            test_map_preserves_order;
          Alcotest.test_case "map edge sizes" `Quick test_map_empty_and_single;
          Alcotest.test_case "find_first lowest index" `Quick
            test_find_first_lowest_index;
          Alcotest.test_case "find_first none" `Quick test_find_first_none;
          Alcotest.test_case "nested fan-out inline" `Quick
            test_nested_fanout_runs_inline;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
        ] );
      ( "bound",
        [ Alcotest.test_case "monotone minimum" `Quick test_bound_monotone_min ] );
      ( "perf",
        [ Alcotest.test_case "counters" `Quick test_perf_counters ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel exact = sequential" `Quick
            test_parallel_exact_equals_sequential;
          Alcotest.test_case "parallel synthesis = sequential" `Quick
            test_parallel_synthesis_equals_sequential;
          Alcotest.test_case "parallel contingency = sequential" `Quick
            test_parallel_contingency_equals_sequential;
        ] );
    ]
