(* Tests for the multiprocessor decomposition: partitioning, constraint
   splitting with window allotment, bus scheduling, and the end-to-end
   synthesis flow. *)

open Rt_core
module Pt = Rt_multiproc.Partition
module Dc = Rt_multiproc.Decompose
module Ns = Rt_multiproc.Netsched
module Ms = Rt_multiproc.Msched

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let example = Rt_workload.Suite.control_system Rt_workload.Suite.default_params

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let test_partition_single () =
  let p = Pt.single example.Model.comm in
  checki "one processor" 1 p.Pt.n_procs;
  checkb "no cut edges" true (Pt.cut_edges example.Model.comm p = []);
  checki "full load" (Comm_graph.total_weight example.Model.comm)
    (Pt.max_load example.Model.comm p)

let test_partition_greedy_balance () =
  let p = Pt.greedy example.Model.comm ~n_procs:2 in
  let loads = Pt.loads example.Model.comm p in
  checki "two processors" 2 (Array.length loads);
  checki "total preserved"
    (Comm_graph.total_weight example.Model.comm)
    (loads.(0) + loads.(1));
  (* Total weight 6 over 2 procs: max load must be < 6 (something
     moved). *)
  checkb "not everything on one processor" true
    (Pt.max_load example.Model.comm p < 6)

let test_partition_refine_reduces_cut () =
  let g = Rt_graph.Prng.create 42 in
  for _ = 1 to 10 do
    let m =
      Rt_workload.Model_gen.periodic_chain_model g ~n_constraints:6
        ~utilization:0.5 ~periods:[ 12; 24 ]
    in
    let rough = Pt.greedy m.Model.comm ~n_procs:3 in
    let refined = Pt.refine m.Model.comm rough in
    checkb "refinement never increases the cut" true
      (List.length (Pt.cut_edges m.Model.comm refined)
      <= List.length (Pt.cut_edges m.Model.comm rough));
    checkb "refinement keeps the load bound" true
      (Pt.max_load m.Model.comm refined <= Pt.max_load m.Model.comm rough)
  done

(* ------------------------------------------------------------------ *)
(* Decompose                                                           *)
(* ------------------------------------------------------------------ *)

let test_decompose_single_proc_no_messages () =
  let p = Pt.single example.Model.comm in
  match Dc.decompose example p ~msg_cost:1 with
  | Error e -> Alcotest.failf "failed: %s" e
  | Ok plans ->
      checki "three plans" 3 (List.length plans);
      checki "no bus demand" 0 (Dc.total_bus_demand plans);
      List.iter
        (fun plan ->
          checki "one segment" 1 (List.length plan.Dc.pieces);
          match (List.hd plan.Dc.pieces).Dc.piece with
          | Dc.Segment s -> checki "on processor 0" 0 s.processor
          | Dc.Message _ -> Alcotest.fail "no message expected")
        plans

let test_decompose_windows_chain () =
  let p = Pt.greedy example.Model.comm ~n_procs:2 in
  match Dc.decompose example p ~msg_cost:1 with
  | Error e -> Alcotest.failf "failed: %s" e
  | Ok plans ->
      List.iter
        (fun plan ->
          (* Windows tile [0, deadline]: consecutive and each at least
             as long as its piece's time. *)
          let rec walk off = function
            | [] -> ()
            | w :: rest ->
                checki "windows chain" off w.Dc.start_off;
                checkb "window fits its work" true
                  (w.Dc.end_off - w.Dc.start_off
                  >= match w.Dc.piece with
                     | Dc.Segment s -> s.work
                     | Dc.Message m -> m.cost);
                walk w.Dc.end_off rest
          in
          walk 0 plan.Dc.pieces)
        plans

let test_decompose_strategies_tile () =
  let p = Pt.greedy example.Model.comm ~n_procs:2 in
  List.iter
    (fun strategy ->
      match Dc.decompose ~strategy example p ~msg_cost:1 with
      | Error e -> Alcotest.failf "failed: %s" e
      | Ok plans ->
          List.iter
            (fun plan ->
              let rec walk off = function
                | [] -> ()
                | w :: rest ->
                    checki "windows chain" off w.Dc.start_off;
                    checkb "window fits its work" true
                      (w.Dc.end_off - w.Dc.start_off
                      >= match w.Dc.piece with
                         | Dc.Segment s -> s.work
                         | Dc.Message m -> m.cost);
                    walk w.Dc.end_off rest
              in
              walk 0 plan.Dc.pieces)
            plans)
    [ Dc.Proportional; Dc.Front_loaded; Dc.Back_loaded ]

let test_decompose_async_polling () =
  let p = Pt.single example.Model.comm in
  match Dc.decompose example p ~msg_cost:0 with
  | Error e -> Alcotest.failf "failed: %s" e
  | Ok plans ->
      let pz = List.find (fun pl -> pl.Dc.constraint_name = "pz") plans in
      (* d_z = 15 -> polling period ceil(16/2) = 8. *)
      checki "polling period" 8 pz.Dc.period

let test_decompose_infeasible_cut () =
  (* msg_cost so large the chain cannot fit its deadline. *)
  let p = Pt.greedy example.Model.comm ~n_procs:2 in
  let cut = Pt.cut_edges example.Model.comm p in
  if cut <> [] then
    match Dc.decompose example p ~msg_cost:1000 with
    | Error _ -> ()
    | Ok plans ->
        (* Only fails if some constraint actually crosses the cut. *)
        checkb "no plan crosses processors" true
          (List.for_all
             (fun plan ->
               List.for_all
                 (fun w ->
                   match w.Dc.piece with Dc.Message _ -> false | _ -> true)
                 plan.Dc.pieces)
             plans)

(* ------------------------------------------------------------------ *)
(* Netsched                                                            *)
(* ------------------------------------------------------------------ *)

let test_netsched_simple () =
  let items =
    [
      { Ns.item_name = "m1"; release = 0; abs_deadline = 2; cost = 1 };
      { Ns.item_name = "m2"; release = 0; abs_deadline = 4; cost = 2 };
    ]
  in
  match Ns.schedule ~horizon:4 items with
  | Error ms -> Alcotest.failf "failed: %s" (Ns.misses_to_string ms)
  | Ok bus ->
      checkb "EDF order" true (bus.(0) = Some "m1");
      checkb "m2 follows" true (bus.(1) = Some "m2" && bus.(2) = Some "m2")

let test_netsched_miss () =
  let items =
    [
      { Ns.item_name = "m1"; release = 0; abs_deadline = 1; cost = 1 };
      { Ns.item_name = "m2"; release = 0; abs_deadline = 1; cost = 1 };
    ]
  in
  match Ns.schedule ~horizon:4 items with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "two unit messages by t=1 is impossible"

let test_netsched_all_misses () =
  (* Three items each needing 2 slots by t=2 and one feasible late item:
     every infeasible item is reported, not just the first, and the
     feasible traffic is still dispatched. *)
  let items =
    [
      { Ns.item_name = "a"; release = 0; abs_deadline = 2; cost = 2 };
      { Ns.item_name = "b"; release = 0; abs_deadline = 2; cost = 2 };
      { Ns.item_name = "c"; release = 0; abs_deadline = 2; cost = 2 };
      { Ns.item_name = "late"; release = 4; abs_deadline = 8; cost = 2 };
    ]
  in
  match Ns.schedule ~horizon:8 items with
  | Ok _ -> Alcotest.fail "6 slots by t=2 is impossible"
  | Error misses ->
      checki "two of the three tight items miss" 2 (List.length misses);
      List.iter
        (fun m ->
          checkb "a tight item" true (List.mem m.Ns.missed [ "a"; "b"; "c" ]);
          checki "misses at its deadline" 2 m.Ns.miss_deadline;
          checkb "shortfall reported" true (m.Ns.short > 0))
        misses;
      checkb "deterministic order" true
        (List.sort compare (List.map (fun m -> m.Ns.missed) misses)
        = List.map (fun m -> m.Ns.missed) misses)

(* Independent brute-force feasibility for small instances: backtracking
   over which ready item each bus slot serves. *)
let brute_force_feasible ~horizon items =
  let items = Array.of_list items in
  let remaining = Array.map (fun i -> i.Ns.cost) items in
  let rec go t =
    if Array.for_all (fun r -> r = 0) remaining then true
    else if t >= horizon then false
    else if
      Array.exists
        (fun i -> remaining.(i) > 0 && items.(i).Ns.abs_deadline <= t)
        (Array.init (Array.length items) Fun.id)
    then false
    else
      (* Try idling this slot, or serving any ready item. *)
      let choices =
        None
        :: List.filter_map
             (fun i ->
               if remaining.(i) > 0 && items.(i).Ns.release <= t then Some (Some i)
               else None)
             (List.init (Array.length items) Fun.id)
      in
      List.exists
        (fun choice ->
          match choice with
          | None -> go (t + 1)
          | Some i ->
              remaining.(i) <- remaining.(i) - 1;
              let ok = go (t + 1) in
              remaining.(i) <- remaining.(i) + 1;
              ok)
        choices
  in
  go 0

let test_netsched_edf_iff_brute_force () =
  (* Property: EDF bus scheduling succeeds exactly when the instance is
     feasible at all (EDF optimality on one resource). *)
  let g = Rt_graph.Prng.create 7771 in
  for _ = 1 to 60 do
    let horizon = 4 + Rt_graph.Prng.int g 5 in
    let n = 1 + Rt_graph.Prng.int g 3 in
    let items =
      List.init n (fun i ->
          let release = Rt_graph.Prng.int g (horizon - 1) in
          let span = 1 + Rt_graph.Prng.int g (horizon - release) in
          {
            Ns.item_name = Printf.sprintf "m%d" i;
            release;
            abs_deadline = release + span;
            cost = 1 + Rt_graph.Prng.int g 2;
          })
    in
    let edf_ok =
      match Ns.schedule ~horizon items with Ok _ -> true | Error _ -> false
    in
    checkb "EDF feasible iff brute-force feasible"
      (brute_force_feasible ~horizon items)
      edf_ok
  done

let test_netsched_arq_slack () =
  (* cost 1, deadline 3: one retransmission fits, two cannot. *)
  let items =
    [
      { Ns.item_name = "m1"; release = 0; abs_deadline = 3; cost = 1 };
      { Ns.item_name = "m2"; release = 0; abs_deadline = 6; cost = 1 };
    ]
  in
  (match Ns.schedule_arq ~horizon:6 ~k:1 items with
  | Ok bus ->
      (* Each item holds cost + k slots. *)
      let count name =
        Array.fold_left
          (fun acc s -> if s = Some name then acc + 1 else acc)
          0 bus
      in
      checki "m1 reserved" 2 (count "m1");
      checki "m2 reserved" 2 (count "m2")
  | Error ms -> Alcotest.failf "k=1 must fit: %s" (Ns.misses_to_string ms));
  (match Ns.schedule_arq ~horizon:6 ~k:3 items with
  | Ok _ -> Alcotest.fail "k=3 inflates m1 to 4 slots by t=3"
  | Error _ -> ());
  checkb "tolerance is the largest feasible k" true
    (Ns.arq_tolerance ~horizon:6 items = Some 2)

let test_partition_refine_property () =
  (* Satellite property: refine never increases max_load nor the number
     of cut edges, on random models. *)
  let g = Rt_graph.Prng.create 31337 in
  for _ = 1 to 25 do
    let m =
      Rt_workload.Model_gen.periodic_chain_model g ~n_constraints:5
        ~utilization:0.6 ~periods:[ 12; 24 ]
    in
    let n_procs = 2 + Rt_graph.Prng.int g 3 in
    let rough = Pt.greedy m.Model.comm ~n_procs in
    let refined = Pt.refine m.Model.comm rough in
    checkb "max_load never increases" true
      (Pt.max_load m.Model.comm refined <= Pt.max_load m.Model.comm rough);
    checkb "cut_edges never grows" true
      (List.length (Pt.cut_edges m.Model.comm refined)
      <= List.length (Pt.cut_edges m.Model.comm rough))
  done

let test_partition_repair () =
  let g = Rt_graph.Prng.create 555 in
  for _ = 1 to 10 do
    let m =
      Rt_workload.Model_gen.periodic_chain_model g ~n_constraints:5
        ~utilization:0.6 ~periods:[ 12; 24 ]
    in
    let p = Pt.greedy m.Model.comm ~n_procs:3 in
    for dead = 0 to 2 do
      match Pt.repair m.Model.comm p ~dead with
      | Error e -> Alcotest.failf "repair failed: %s" e
      | Ok r ->
          checki "processor count stable" 3 r.Pt.n_procs;
          checki "dead processor empty" 0 (Pt.loads m.Model.comm r).(dead);
          Array.iteri
            (fun e proc ->
              if p.Pt.assignment.(e) <> dead then
                checki "survivors untouched" p.Pt.assignment.(e) proc
              else checkb "displaced onto a survivor" true (proc <> dead))
            r.Pt.assignment
    done
  done;
  match Pt.repair example.Model.comm (Pt.single example.Model.comm) ~dead:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "repair with one processor must fail"

let test_netsched_utilization () =
  let items =
    [ { Ns.item_name = "m"; release = 0; abs_deadline = 10; cost = 3 } ]
  in
  Alcotest.check (Alcotest.float 1e-9) "bus load" 0.3
    (Ns.utilization ~horizon:10 items)

(* ------------------------------------------------------------------ *)
(* Msched end-to-end                                                   *)
(* ------------------------------------------------------------------ *)

let test_msched_example_two_procs () =
  match Ms.synthesize ~n_procs:2 ~msg_cost:1 example with
  | Error e -> Alcotest.failf "multiprocessor synthesis failed: %s" e
  | Ok r ->
      checki "two processor schedules" 2 (Array.length r.Ms.processor_schedules);
      (* Each processor only runs its own elements. *)
      Array.iteri
        (fun proc sched ->
          Array.iter
            (function
              | Schedule.Idle -> ()
              | Schedule.Run e ->
                  checki "element on its processor" proc
                    r.Ms.partition.Pt.assignment.(e))
            (Schedule.slots sched))
        r.Ms.processor_schedules;
      (* Bus only used when there are cut edges. *)
      if r.Ms.cut = 0 then
        checkb "bus silent" true (r.Ms.bus_load = 0.0)

let test_msched_one_proc_matches_single () =
  match Ms.synthesize ~n_procs:1 ~msg_cost:1 example with
  | Error e -> Alcotest.failf "failed: %s" e
  | Ok r ->
      checki "no cut" 0 r.Ms.cut;
      checkb "no bus traffic" true (r.Ms.bus_load = 0.0)

let test_msched_scales_capacity () =
  (* A workload that overloads one processor but fits on two:
     independent single-op constraints of combined utilization 1.5. *)
  let comm =
    Comm_graph.create
      ~elements:[ ("a", 3, true); ("b", 3, true) ]
      ~edges:[]
  in
  let mk name elem =
    Timing.make ~name ~graph:(Task_graph.singleton elem) ~period:4 ~deadline:4
      ~kind:Timing.Periodic
  in
  let m = Model.make ~comm ~constraints:[ mk "ca" 0; mk "cb" 1 ] in
  (match Ms.synthesize ~n_procs:1 m with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "one processor cannot carry utilization 1.5");
  match Ms.synthesize ~n_procs:2 m with
  | Error e -> Alcotest.failf "two processors should fit: %s" e
  | Ok r ->
      checkb "both processors used" true
        (r.Ms.proc_loads.(0) > 0.0 && r.Ms.proc_loads.(1) > 0.0)

let test_msched_rejects_unconstrained () =
  let comm = Comm_graph.create ~elements:[ ("a", 1, true) ] ~edges:[] in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:5
            ~deadline:9 ~kind:Timing.Periodic;
        ]
  in
  match Ms.synthesize m with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "d > p unsupported"

let test_msched_verify_end_to_end () =
  match Ms.synthesize ~n_procs:3 ~msg_cost:1 example with
  | Error e -> Alcotest.failf "synthesis failed: %s" e
  | Ok r -> (
      match Ms.verify example r with
      | Ok () -> ()
      | Error errs ->
          Alcotest.failf "end-to-end verification failed: %s"
            (String.concat "; " errs))

let test_msched_verify_detects_corruption () =
  match Ms.synthesize ~n_procs:2 ~msg_cost:1 example with
  | Error e -> Alcotest.failf "synthesis failed: %s" e
  | Ok r ->
      (* Blank one processor's schedule: windows must now fail. *)
      let idle =
        Schedule.of_slots (List.init r.Ms.hyperperiod (fun _ -> Schedule.Idle))
      in
      let busy_proc =
        (* pick a processor that actually runs something *)
        let rec find i =
          if Schedule.busy_slots r.Ms.processor_schedules.(i) > 0 then i
          else find (i + 1)
        in
        find 0
      in
      let corrupted =
        {
          r with
          Ms.processor_schedules =
            Array.mapi
              (fun i s -> if i = busy_proc then idle else s)
              r.Ms.processor_schedules;
        }
      in
      (match Ms.verify example corrupted with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "blanked processor must fail verification")

let test_msched_deterministic () =
  (* Everything in the flow is deterministic (ordered data structures,
     seeded randomness): synthesizing twice must give slot-identical
     schedules on every processor and the bus. *)
  let g = Rt_graph.Prng.create 2024 in
  for _ = 1 to 5 do
    let m =
      Rt_workload.Model_gen.periodic_chain_model g ~n_constraints:4
        ~utilization:0.7 ~periods:[ 12; 24 ]
    in
    match (Ms.synthesize ~n_procs:2 m, Ms.synthesize ~n_procs:2 m) with
    | Ok a, Ok b ->
        checkb "same processor schedules" true
          (Array.for_all2 Schedule.equal a.Ms.processor_schedules
             b.Ms.processor_schedules);
        checkb "same bus" true (a.Ms.bus = b.Ms.bus)
    | Error ea, Error eb -> checkb "same failure" true (ea = eb)
    | _ -> Alcotest.fail "nondeterministic outcome"
  done

let test_msched_round_trip () =
  (* Round-trip: verified per-processor + bus schedules imply the
     original end-to-end constraints on the merged trace — every
     constraint's measured worst response stays within its deadline. *)
  let deadlines =
    List.map
      (fun (c : Timing.t) -> (c.name, c.deadline))
      example.Model.constraints
  in
  List.iter
    (fun n_procs ->
      match Ms.synthesize ~n_procs ~msg_cost:1 example with
      | Error e -> Alcotest.failf "synthesis failed: %s" e
      | Ok r ->
          (match Ms.verify example r with
          | Ok () -> ()
          | Error errs ->
              Alcotest.failf "verification failed: %s" (String.concat "; " errs));
          List.iter
            (fun (name, bound) ->
              checkb "response positive" true (bound > 0);
              match List.assoc_opt name deadlines with
              | None -> Alcotest.failf "unknown constraint %s" name
              | Some d ->
                  checkb
                    (Printf.sprintf "%s: response %d within deadline %d" name
                       bound d)
                    true (bound <= d))
            (Ms.response_bounds example r))
    [ 1; 2; 3 ]

let test_msched_synthesize_with () =
  (* A caller-supplied partition is used as-is (processor ids stable),
     and arq_slack widens the bus reservation. *)
  let p = Pt.refine example.Model.comm (Pt.greedy example.Model.comm ~n_procs:2) in
  match Ms.synthesize_with ~msg_cost:1 example p with
  | Error e -> Alcotest.failf "synthesize_with failed: %s" e
  | Ok r ->
      checkb "partition kept" true (r.Ms.partition.Pt.assignment = p.Pt.assignment);
      checki "msg_cost recorded" 1 r.Ms.msg_cost;
      checki "no slack by default" 0 r.Ms.arq_slack;
      if r.Ms.cut > 0 then begin
        match Ms.synthesize_with ~msg_cost:1 ~arq_slack:1 example p with
        | Error _ -> () (* slack may make the system infeasible; fine *)
        | Ok r' ->
            checki "slack recorded" 1 r'.Ms.arq_slack;
            checkb "wider bus reservation" true (r'.Ms.bus_load >= r.Ms.bus_load)
      end

let test_msched_random_models () =
  let g = Rt_graph.Prng.create 99 in
  let successes = ref 0 in
  for _ = 1 to 10 do
    let m =
      Rt_workload.Model_gen.periodic_chain_model g ~n_constraints:5
        ~utilization:0.8 ~periods:[ 12; 24 ]
    in
    match Ms.synthesize ~n_procs:2 ~msg_cost:1 m with
    | Ok r ->
        incr successes;
        (* Sanity: hyperperiod divides all plan periods' lcm. *)
        checkb "hyperperiod positive" true (r.Ms.hyperperiod > 0)
    | Error _ -> ()
  done;
  checkb "most random models fit on two processors" true (!successes >= 5)

let () =
  Alcotest.run "rt_multiproc"
    [
      ( "partition",
        [
          Alcotest.test_case "single" `Quick test_partition_single;
          Alcotest.test_case "greedy balance" `Quick
            test_partition_greedy_balance;
          Alcotest.test_case "refine" `Quick test_partition_refine_reduces_cut;
          Alcotest.test_case "refine invariants" `Quick
            test_partition_refine_property;
          Alcotest.test_case "repair" `Quick test_partition_repair;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "single proc" `Quick
            test_decompose_single_proc_no_messages;
          Alcotest.test_case "windows chain" `Quick
            test_decompose_windows_chain;
          Alcotest.test_case "strategies tile" `Quick
            test_decompose_strategies_tile;
          Alcotest.test_case "async polling" `Quick
            test_decompose_async_polling;
          Alcotest.test_case "infeasible cut" `Quick
            test_decompose_infeasible_cut;
        ] );
      ( "netsched",
        [
          Alcotest.test_case "simple" `Quick test_netsched_simple;
          Alcotest.test_case "miss" `Quick test_netsched_miss;
          Alcotest.test_case "all misses reported" `Quick
            test_netsched_all_misses;
          Alcotest.test_case "EDF iff brute force" `Quick
            test_netsched_edf_iff_brute_force;
          Alcotest.test_case "ARQ slack" `Quick test_netsched_arq_slack;
          Alcotest.test_case "utilization" `Quick test_netsched_utilization;
        ] );
      ( "msched",
        [
          Alcotest.test_case "example on two" `Quick
            test_msched_example_two_procs;
          Alcotest.test_case "one proc" `Quick
            test_msched_one_proc_matches_single;
          Alcotest.test_case "scales capacity" `Quick
            test_msched_scales_capacity;
          Alcotest.test_case "rejects unconstrained" `Quick
            test_msched_rejects_unconstrained;
          Alcotest.test_case "end-to-end verify" `Quick
            test_msched_verify_end_to_end;
          Alcotest.test_case "verify detects corruption" `Quick
            test_msched_verify_detects_corruption;
          Alcotest.test_case "round trip" `Quick test_msched_round_trip;
          Alcotest.test_case "synthesize_with" `Quick
            test_msched_synthesize_with;
          Alcotest.test_case "random models" `Slow test_msched_random_models;
          Alcotest.test_case "deterministic" `Quick
            test_msched_deterministic;
        ] );
    ]
