(* Tests for the latency analyser: window containment (executes_within),
   next_completion, latency, and constraint verification.  Includes a
   brute-force containment oracle used both for a regression case where
   a purely greedy matcher fails and as a qcheck property. *)

open Rt_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let opt_int = Alcotest.option Alcotest.int

let comm2 =
  (* u, v unit weight; complete little communication graph. *)
  Comm_graph.create
    ~elements:[ ("u", 1, true); ("v", 1, true) ]
    ~edges:[ ("u", "v"); ("v", "u") ]

(* ------------------------------------------------------------------ *)
(* Brute-force containment oracle                                      *)
(* ------------------------------------------------------------------ *)

(* Enumerate all injective node -> instance assignments and check the
   precedence condition directly. *)
let oracle g tg trace ~t0 ~t1 =
  ignore g;
  let n = Task_graph.size tg in
  let candidates v =
    let e = Task_graph.element_of_node tg v in
    Array.to_list (Trace.instances trace e)
    |> List.filter (fun (i : Trace.instance) -> i.start >= t0 && i.finish <= t1)
  in
  let rec assign v chosen =
    if v = n then
      (* check precedence over the complete assignment *)
      List.for_all
        (fun (a, b) ->
          let ia : Trace.instance = List.assoc a chosen in
          let ib : Trace.instance = List.assoc b chosen in
          ia.finish <= ib.start)
        (Task_graph.edges tg)
    else
      List.exists
        (fun (inst : Trace.instance) ->
          (* injectivity among same-element nodes *)
          not
            (List.exists
               (fun (_, (used : Trace.instance)) ->
                 used.elem = inst.elem && used.index = inst.index)
               chosen)
          && assign (v + 1) ((v, inst) :: chosen))
        (candidates v)
  in
  assign 0 []

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

let test_simple_chain_containment () =
  let tg = Task_graph.of_chain [ 0; 1 ] in
  let slots = [| Schedule.Run 0; Schedule.Idle; Schedule.Run 1 |] in
  let tr = Trace.of_slots comm2 slots in
  checkb "u then v inside window" true
    (Latency.contains_execution comm2 tg tr ~t0:0 ~t1:3);
  checkb "window too short" false
    (Latency.contains_execution comm2 tg tr ~t0:0 ~t1:2);
  (* v before u does not count: precedence requires u's output first. *)
  let slots_rev = [| Schedule.Run 1; Schedule.Idle; Schedule.Run 0 |] in
  let tr_rev = Trace.of_slots comm2 slots_rev in
  checkb "wrong order rejected" false
    (Latency.contains_execution comm2 tg tr_rev ~t0:0 ~t1:3)

let test_same_slot_boundary () =
  (* u finishing exactly when v starts is allowed (transmission is
     instantaneous on a single processor). *)
  let tg = Task_graph.of_chain [ 0; 1 ] in
  let tr = Trace.of_slots comm2 [| Schedule.Run 0; Schedule.Run 1 |] in
  checkb "back-to-back ok" true
    (Latency.contains_execution comm2 tg tr ~t0:0 ~t1:2)

let test_duplicate_element_needs_two_instances () =
  (* Task graph u -> u: two distinct executions of u in order. *)
  let tg = Task_graph.create ~nodes:[| 0; 0 |] ~edges:[ (0, 1) ] in
  let comm_loop =
    Comm_graph.create ~elements:[ ("u", 1, true) ] ~edges:[ ("u", "u") ]
  in
  let one = Trace.of_slots comm_loop [| Schedule.Run 0; Schedule.Idle |] in
  checkb "one instance is not enough" false
    (Latency.contains_execution comm_loop tg one ~t0:0 ~t1:2);
  let two = Trace.of_slots comm_loop [| Schedule.Run 0; Schedule.Run 0 |] in
  checkb "two instances suffice" true
    (Latency.contains_execution comm_loop tg two ~t0:0 ~t1:2)

let test_backtracking_needed () =
  (* Nodes: C(u), A(u), B(v) with edge A -> B.  u runs at slots 0 and
     10; v at slot 2.  A greedy matcher processing C before A gives C
     the early u and leaves B without a feasible v; the backtracking
     search must still find the assignment C=u@10, A=u@0, B=v@2. *)
  let tg = Task_graph.create ~nodes:[| 0; 0; 1 |] ~edges:[ (1, 2) ] in
  let slots = Array.make 13 Schedule.Idle in
  slots.(0) <- Schedule.Run 0;
  slots.(10) <- Schedule.Run 0;
  slots.(2) <- Schedule.Run 1;
  let tr = Trace.of_slots comm2 slots in
  checkb "oracle agrees it fits" true (oracle comm2 tg tr ~t0:0 ~t1:13);
  checkb "search finds it" true
    (Latency.contains_execution comm2 tg tr ~t0:0 ~t1:13)

let test_assignment_returned_is_valid () =
  let tg = Task_graph.of_chain [ 0; 1 ] in
  let tr =
    Trace.of_slots comm2 [| Schedule.Run 0; Schedule.Run 1; Schedule.Run 0 |]
  in
  match Latency.executes_within comm2 tg tr ~t0:0 ~t1:3 with
  | None -> Alcotest.fail "expected an execution"
  | Some assignment ->
      checki "two nodes assigned" 2 (List.length assignment);
      let i0 : Trace.instance = List.assoc 0 assignment in
      let i1 : Trace.instance = List.assoc 1 assignment in
      checkb "precedence in assignment" true (i0.finish <= i1.start)

(* ------------------------------------------------------------------ *)
(* next_completion                                                     *)
(* ------------------------------------------------------------------ *)

let test_next_completion () =
  let tg = Task_graph.of_chain [ 0; 1 ] in
  let sched =
    Schedule.of_slots
      [ Schedule.Run 0; Schedule.Run 1; Schedule.Idle; Schedule.Idle ]
  in
  let tr = Trace.of_schedule comm2 sched ~horizon:40 in
  Alcotest.check opt_int "from 0" (Some 2)
    (Latency.next_completion comm2 tg tr ~from:0);
  (* From 1: u at slot 4, v at slot 5 -> completion 6. *)
  Alcotest.check opt_int "from 1" (Some 6)
    (Latency.next_completion comm2 tg tr ~from:1);
  Alcotest.check opt_int "from 3" (Some 6)
    (Latency.next_completion comm2 tg tr ~from:3)

let test_next_completion_absent_element () =
  let tg = Task_graph.of_chain [ 0; 1 ] in
  let sched = Schedule.of_slots [ Schedule.Run 0 ] in
  let tr = Trace.of_schedule comm2 sched ~horizon:20 in
  Alcotest.check opt_int "v never runs" None
    (Latency.next_completion comm2 tg tr ~from:0)

(* ------------------------------------------------------------------ *)
(* latency                                                             *)
(* ------------------------------------------------------------------ *)

let test_latency_single_op () =
  let tg = Task_graph.singleton 0 in
  let sched =
    Schedule.of_slots [ Schedule.Run 0; Schedule.Idle; Schedule.Idle ]
  in
  (* Worst window starts just after u: wait 2 idle slots + 1 slot of u. *)
  Alcotest.check opt_int "latency 3" (Some 3) (Latency.latency comm2 sched tg)

let test_latency_chain () =
  let tg = Task_graph.of_chain [ 0; 1 ] in
  let sched = Schedule.of_slots [ Schedule.Run 0; Schedule.Run 1 ] in
  (* From an even slot: 2.  From an odd slot: next u at +1, v at +2 ->
     latency 3. *)
  Alcotest.check opt_int "latency 3" (Some 3) (Latency.latency comm2 sched tg)

let test_latency_unbounded () =
  let tg = Task_graph.singleton 1 in
  let sched = Schedule.of_slots [ Schedule.Run 0 ] in
  Alcotest.check opt_int "element missing => unbounded" None
    (Latency.latency comm2 sched tg)

let test_latency_rotation_invariant () =
  let tg = Task_graph.of_chain [ 0; 1 ] in
  let sched =
    Schedule.of_slots
      [ Schedule.Run 0; Schedule.Idle; Schedule.Run 1; Schedule.Run 0;
        Schedule.Run 1 ]
  in
  let l0 = Latency.latency comm2 sched tg in
  for k = 1 to 4 do
    Alcotest.check opt_int
      (Printf.sprintf "rotation %d preserves latency" k)
      l0
      (Latency.latency comm2 (Schedule.rotate sched k) tg)
  done

let test_worst_window () =
  let tg = Task_graph.singleton 0 in
  let sched =
    Schedule.of_slots [ Schedule.Run 0; Schedule.Idle; Schedule.Idle ]
  in
  match Latency.worst_window comm2 sched tg with
  | Some (t0, t1) ->
      checki "witness width = latency" 3 (t1 - t0);
      (* The worst start is just after u's slot. *)
      checki "worst offset" 1 t0
  | None -> Alcotest.fail "latency is bounded"

let test_worst_window_unbounded () =
  let tg = Task_graph.singleton 1 in
  let sched = Schedule.of_slots [ Schedule.Run 0 ] in
  checkb "unbounded -> None" true
    (Latency.worst_window comm2 sched tg = None)

(* Integration: the latency verdict must agree with replaying the
   schedule against an arrival at EVERY offset of the cycle. *)
let test_latency_agrees_with_runtime_offsets () =
  let m =
    Model.make ~comm:comm2
      ~constraints:
        [
          Timing.make ~name:"c"
            ~graph:(Task_graph.of_chain [ 0; 1 ])
            ~period:30 ~deadline:6 ~kind:Timing.Asynchronous;
        ]
  in
  let sched =
    Schedule.of_slots
      [ Schedule.Run 0; Schedule.Run 1; Schedule.Idle; Schedule.Run 0;
        Schedule.Idle; Schedule.Run 1 ]
  in
  let c = Model.find m "c" in
  let lat =
    match Latency.latency comm2 sched c.Timing.graph with
    | Some k -> k
    | None -> Alcotest.fail "bounded latency expected"
  in
  let worst_resp = ref 0 in
  for offset = 0 to Schedule.length sched - 1 do
    let r =
      Rt_sim.Runtime.run m sched ~horizon:(offset + 1)
        ~arrivals:[ ("c", [ offset ]) ]
    in
    match (List.hd r.Rt_sim.Runtime.invocations).Rt_sim.Runtime.response with
    | Some resp -> worst_resp := max !worst_resp resp
    | None -> Alcotest.fail "completion expected"
  done;
  checki "worst runtime response = analytic latency" lat !worst_resp

(* ------------------------------------------------------------------ *)
(* meets / periodic_response / verify                                  *)
(* ------------------------------------------------------------------ *)

let test_meets_asynchronous () =
  let c =
    Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:5 ~deadline:3
      ~kind:Timing.Asynchronous
  in
  let tight =
    Schedule.of_slots [ Schedule.Run 0; Schedule.Idle; Schedule.Idle ]
  in
  checkb "latency 3 meets d=3" true (Latency.meets_asynchronous comm2 tight c);
  let loose =
    Schedule.of_slots
      [ Schedule.Run 0; Schedule.Idle; Schedule.Idle; Schedule.Idle ]
  in
  checkb "latency 4 misses d=3" false (Latency.meets_asynchronous comm2 loose c)

let test_periodic_response () =
  let c =
    Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:6 ~deadline:4
      ~kind:Timing.Periodic
  in
  let sched =
    Schedule.of_slots
      [ Schedule.Run 0; Schedule.Idle; Schedule.Idle; Schedule.Idle ]
  in
  (* Invocations at 0, 6, 12, ... phases mod 4 cycle: 0 -> resp 1;
     6 -> next u at 8, resp 3; 12 -> u at 12, resp 1; 18 -> u at 20,
     resp 3.  Worst = 3. *)
  Alcotest.check opt_int "worst response" (Some 3)
    (Latency.periodic_response comm2 sched c);
  checkb "meets d=4" true (Latency.meets_periodic comm2 sched c)

let test_periodic_response_offset () =
  let mk offset =
    let c =
      Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:4
        ~deadline:4 ~kind:Timing.Periodic
    in
    if offset = 0 then c else Timing.with_offset c offset
  in
  let sched =
    Schedule.of_slots
      [ Schedule.Run 0; Schedule.Idle; Schedule.Idle; Schedule.Idle ]
  in
  (* Releases aligned with the slot of u: response 1. *)
  Alcotest.check opt_int "offset 0" (Some 1)
    (Latency.periodic_response comm2 sched (mk 0));
  (* Releases one slot late: must wait for the next cycle's u. *)
  Alcotest.check opt_int "offset 1" (Some 4)
    (Latency.periodic_response comm2 sched (mk 1))

let test_verify_reports_all () =
  let m =
    Model.make ~comm:comm2
      ~constraints:
        [
          Timing.make ~name:"async_u" ~graph:(Task_graph.singleton 0) ~period:4
            ~deadline:2 ~kind:Timing.Asynchronous;
          Timing.make ~name:"per_v" ~graph:(Task_graph.singleton 1) ~period:4
            ~deadline:4 ~kind:Timing.Periodic;
        ]
  in
  let sched =
    Schedule.of_slots
      [ Schedule.Run 0; Schedule.Run 1; Schedule.Run 0; Schedule.Idle ]
  in
  let verdicts = Latency.verify m sched in
  checki "two verdicts" 2 (List.length verdicts);
  checkb "all ok" true (Latency.all_ok verdicts);
  let v_async = List.find (fun v -> v.Latency.constraint_name = "async_u") verdicts in
  Alcotest.check opt_int "async latency" (Some 2) v_async.Latency.achieved

let test_verify_rejects_illformed () =
  let comm =
    Comm_graph.create ~elements:[ ("w2", 2, true) ] ~edges:[]
  in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:4
            ~deadline:4 ~kind:Timing.Asynchronous;
        ]
  in
  (* One slot of a weight-2 element per cycle: ill-formed. *)
  let bad = Schedule.of_slots [ Schedule.Run 0; Schedule.Idle ] in
  checkb "raises" true
    (try
       ignore (Latency.verify m bad);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Property: search = brute-force oracle                               *)
(* ------------------------------------------------------------------ *)

let containment_instance_gen =
  (* Random: 3-element comm graph (unit weights, complete), task graph
     over <= 4 nodes with random forward edges, random 10-slot trace. *)
  QCheck.Gen.(
    int_range 1 4 >>= fun n_nodes ->
    flatten_l (List.init n_nodes (fun _ -> int_range 0 2)) >>= fun node_elems ->
    let pairs =
      List.concat
        (List.init n_nodes (fun i ->
             List.init (n_nodes - i - 1) (fun k -> (i, i + k + 1))))
    in
    flatten_l (List.map (fun _ -> bool) pairs) >>= fun keep ->
    let edges = List.filteri (fun i _ -> List.nth keep i) pairs in
    flatten_l (List.init 10 (fun _ -> int_range (-1) 2)) >>= fun slots ->
    return (node_elems, edges, slots))

let arbitrary_containment =
  QCheck.make
    ~print:(fun (nodes, edges, slots) ->
      Printf.sprintf "nodes=%s edges=%s slots=%s"
        (String.concat "," (List.map string_of_int nodes))
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) edges))
        (String.concat "," (List.map string_of_int slots)))
    containment_instance_gen

let comm3 =
  Comm_graph.create
    ~elements:[ ("x", 1, true); ("y", 1, true); ("z", 1, true) ]
    ~edges:
      [ ("x", "y"); ("y", "x"); ("x", "z"); ("z", "x"); ("y", "z"); ("z", "y");
        ("x", "x"); ("y", "y"); ("z", "z") ]

let prop_search_equals_oracle =
  QCheck.Test.make ~name:"containment search agrees with brute force"
    ~count:500 arbitrary_containment (fun (node_elems, edges, slots) ->
      let tg = Task_graph.create ~nodes:(Array.of_list node_elems) ~edges in
      let trace =
        Trace.of_slots comm3
          (Array.of_list
             (List.map
                (function -1 -> Schedule.Idle | e -> Schedule.Run e)
                slots))
      in
      Latency.contains_execution comm3 tg trace ~t0:0 ~t1:10
      = oracle comm3 tg trace ~t0:0 ~t1:10)

let prop_next_completion_minimal =
  QCheck.Test.make ~name:"next_completion is the minimal window end"
    ~count:300 arbitrary_containment (fun (node_elems, edges, slots) ->
      let tg = Task_graph.create ~nodes:(Array.of_list node_elems) ~edges in
      let trace =
        Trace.of_slots comm3
          (Array.of_list
             (List.map
                (function -1 -> Schedule.Idle | e -> Schedule.Run e)
                slots))
      in
      match Latency.next_completion comm3 tg trace ~from:0 with
      | None -> not (oracle comm3 tg trace ~t0:0 ~t1:10)
      | Some f ->
          oracle comm3 tg trace ~t0:0 ~t1:f
          && (f = 0 || not (oracle comm3 tg trace ~t0:0 ~t1:(f - 1))))

(* ------------------------------------------------------------------ *)
(* Cached analyses = context-free analyses                             *)
(* ------------------------------------------------------------------ *)

let test_cache_next_completion_matches () =
  (* A Cache shared across many questions must answer each exactly like
     the context-free function that rebuilds its state per call. *)
  let m = Rt_workload.Suite.control_system Rt_workload.Suite.default_params in
  match Synthesis.synthesize m with
  | Error _ -> Alcotest.fail "example synthesis failed"
  | Ok plan ->
      let g = plan.Synthesis.model_used.Model.comm in
      let sched = plan.Synthesis.schedule in
      let trace = Trace.of_schedule g sched ~horizon:2000 in
      List.iter
        (fun (c : Timing.t) ->
          let cache = Latency.Cache.create g c.Timing.graph trace in
          for from = 0 to 300 do
            Alcotest.(check (option int))
              (Printf.sprintf "%s from=%d" c.Timing.name from)
              (Latency.next_completion g c.Timing.graph trace ~from)
              (Latency.Cache.next_completion cache ~from)
          done)
        plan.Synthesis.model_used.Model.constraints

let verdicts_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Latency.verdict) (y : Latency.verdict) ->
         x.Latency.constraint_name = y.Latency.constraint_name
         && x.Latency.achieved = y.Latency.achieved
         && x.Latency.ok = y.Latency.ok)
       a b

let test_verify_cached_equals_uncached () =
  (* The memoized single-trace verifier against the per-constraint
     reference engine, on random feasible plans. *)
  let g = Rt_graph.Prng.create 505 in
  let checked = ref 0 in
  for _ = 1 to 12 do
    let m =
      Rt_workload.Model_gen.periodic_chain_model g ~n_constraints:3
        ~utilization:0.8 ~periods:[ 8; 12; 16; 24 ]
    in
    match Synthesis.synthesize m with
    | Error _ -> ()
    | Ok plan ->
        incr checked;
        let mu = plan.Synthesis.model_used in
        checkb "cached = uncached" true
          (verdicts_equal
             (Latency.verify ~cached:true mu plan.Synthesis.schedule)
             (Latency.verify ~cached:false mu plan.Synthesis.schedule))
  done;
  checkb "property exercised" true (!checked > 0)

let test_verify_cached_on_unrolled_schedule () =
  (* Unrolled schedules are where the residue memo actually collapses
     questions (the pattern period divides the nominal length); the
     verdicts must still match the reference engine exactly. *)
  let m = Rt_workload.Suite.control_system Rt_workload.Suite.default_params in
  match Synthesis.synthesize m with
  | Error _ -> Alcotest.fail "example synthesis failed"
  | Ok plan ->
      let mu = plan.Synthesis.model_used in
      List.iter
        (fun k ->
          let sched = Schedule.repeat plan.Synthesis.schedule k in
          checkb
            (Printf.sprintf "x%d unroll" k)
            true
            (verdicts_equal
               (Latency.verify ~cached:true mu sched)
               (Latency.verify ~cached:false mu sched)))
        [ 2; 3; 5 ]

let () =
  Alcotest.run "rt_core-latency"
    [
      ( "containment",
        [
          Alcotest.test_case "simple chain" `Quick
            test_simple_chain_containment;
          Alcotest.test_case "boundary" `Quick test_same_slot_boundary;
          Alcotest.test_case "duplicate element" `Quick
            test_duplicate_element_needs_two_instances;
          Alcotest.test_case "backtracking needed" `Quick
            test_backtracking_needed;
          Alcotest.test_case "assignment valid" `Quick
            test_assignment_returned_is_valid;
        ] );
      ( "next_completion",
        [
          Alcotest.test_case "basics" `Quick test_next_completion;
          Alcotest.test_case "absent element" `Quick
            test_next_completion_absent_element;
        ] );
      ( "latency",
        [
          Alcotest.test_case "single op" `Quick test_latency_single_op;
          Alcotest.test_case "chain" `Quick test_latency_chain;
          Alcotest.test_case "unbounded" `Quick test_latency_unbounded;
          Alcotest.test_case "rotation invariant" `Quick
            test_latency_rotation_invariant;
          Alcotest.test_case "worst window" `Quick test_worst_window;
          Alcotest.test_case "worst window unbounded" `Quick
            test_worst_window_unbounded;
          Alcotest.test_case "agrees with runtime at every offset" `Quick
            test_latency_agrees_with_runtime_offsets;
        ] );
      ( "verification",
        [
          Alcotest.test_case "meets asynchronous" `Quick
            test_meets_asynchronous;
          Alcotest.test_case "periodic response" `Quick test_periodic_response;
          Alcotest.test_case "periodic response with offset" `Quick
            test_periodic_response_offset;
          Alcotest.test_case "verify reports all" `Quick
            test_verify_reports_all;
          Alcotest.test_case "ill-formed rejected" `Quick
            test_verify_rejects_illformed;
        ] );
      ( "cache",
        [
          Alcotest.test_case "Cache.next_completion = next_completion" `Quick
            test_cache_next_completion_matches;
          Alcotest.test_case "verify cached = uncached" `Quick
            test_verify_cached_equals_uncached;
          Alcotest.test_case "verify cached = uncached (unrolled)" `Quick
            test_verify_cached_on_unrolled_schedule;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_search_equals_oracle; prop_next_completion_minimal ] );
    ]
