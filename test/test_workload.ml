(* Tests for the workload generators: random DAGs, random models,
   UUniFast, the NP-complete source problems and the Theorem-2
   reduction. *)

open Rt_core
module Prng = Rt_graph.Prng
module Dg = Rt_workload.Dag_gen
module Mg = Rt_workload.Model_gen
module Npc = Rt_workload.Npc

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Dag_gen                                                             *)
(* ------------------------------------------------------------------ *)

let test_layered_acyclic () =
  let g = Prng.create 1 in
  for _ = 1 to 20 do
    let d = Dg.layered g ~layers:4 ~width:3 ~p_edge:0.4 in
    checkb "acyclic" true (Rt_graph.Digraph.is_acyclic d);
    checkb "non-empty" true (Rt_graph.Digraph.n_nodes d >= 4)
  done

let test_layered_connectivity () =
  let g = Prng.create 2 in
  let d = Dg.layered g ~layers:3 ~width:2 ~p_edge:0.0 in
  (* Every non-final-layer node has at least the forced edge. *)
  let sinks = Rt_graph.Digraph.sinks d in
  List.iter
    (fun v ->
      if not (List.mem v sinks) then
        checkb "forced edge" true (Rt_graph.Digraph.out_degree d v >= 1))
    (List.init (Rt_graph.Digraph.n_nodes d) Fun.id)

let test_erdos_renyi () =
  let g = Prng.create 3 in
  let d = Dg.erdos_renyi g ~n:10 ~p_edge:1.0 in
  checki "complete forward graph" 45 (Rt_graph.Digraph.n_edges d);
  checkb "acyclic" true (Rt_graph.Digraph.is_acyclic d);
  let e = Dg.erdos_renyi g ~n:10 ~p_edge:0.0 in
  checki "empty" 0 (Rt_graph.Digraph.n_edges e)

let test_chain_and_fork_join () =
  let g = Prng.create 4 in
  let c = Dg.random_chain g ~min_len:3 ~max_len:6 in
  checkb "chain shape" true (Rt_graph.Digraph.is_chain c);
  let f = Dg.fork_join g ~branches:3 in
  checki "fork-join nodes" 5 (Rt_graph.Digraph.n_nodes f);
  checki "fork-join edges" 6 (Rt_graph.Digraph.n_edges f);
  checkb "acyclic" true (Rt_graph.Digraph.is_acyclic f)

(* ------------------------------------------------------------------ *)
(* Model_gen                                                           *)
(* ------------------------------------------------------------------ *)

let test_uunifast_sums () =
  let g = Prng.create 5 in
  for n = 1 to 8 do
    let shares = Mg.uunifast g ~n ~total:0.75 in
    let sum = Array.fold_left ( +. ) 0.0 shares in
    checkb "sums to total" true (abs_float (sum -. 0.75) < 1e-9);
    checkb "all positive" true (Array.for_all (fun x -> x >= 0.0) shares)
  done

let test_single_op_model_shape () =
  let g = Prng.create 6 in
  let m = Mg.single_op_model g ~n_constraints:5 ~max_weight:4 ~target_ratio_sum:0.8 in
  checki "five constraints" 5 (List.length m.Model.constraints);
  List.iter
    (fun (c : Timing.t) ->
      checki "single op" 1 (Task_graph.size c.Timing.graph);
      checkb "async" true (Timing.is_asynchronous c);
      checkb "w <= d" true
        (Timing.computation_time m.Model.comm c <= c.Timing.deadline))
    m.Model.constraints

let test_theorem3_model_premises () =
  let g = Prng.create 7 in
  for _ = 1 to 30 do
    let m = Mg.theorem3_model g ~n_constraints:4 ~max_weight:3 in
    checkb "premises hold" true
      (match Model.theorem3_premises m with Ok () -> true | _ -> false)
  done

let test_periodic_chain_model () =
  let g = Prng.create 8 in
  let m =
    Mg.periodic_chain_model g ~n_constraints:6 ~utilization:0.7
      ~periods:[ 10; 20; 40 ]
  in
  checki "six constraints" 6 (List.length m.Model.constraints);
  List.iter
    (fun (c : Timing.t) ->
      checkb "periodic" true (Timing.is_periodic c);
      checkb "implicit deadline" true (c.Timing.deadline = c.Timing.period);
      checkb "period from the menu" true (List.mem c.Timing.period [ 10; 20; 40 ]))
    m.Model.constraints;
  checkb "utilization near target" true
    (abs_float (Model.utilization m -. 0.7) < 0.25)

let test_shared_block_model () =
  let g = Prng.create 9 in
  let m = Mg.shared_block_model g ~n_pairs:3 ~shared_weight:2 ~private_weight:1 ~period:12 in
  checki "six constraints" 6 (List.length m.Model.constraints);
  checki "three shared elements" 3 (List.length (Model.elements_shared m));
  (* Merging must save n_pairs * shared_weight per period. *)
  let _, report = Merge.apply m in
  checki "merge saves shared work" 6
    (report.Merge.time_before - report.Merge.time_after)

let test_dag_model () =
  let g = Prng.create 33 in
  for _ = 1 to 10 do
    let m = Mg.dag_model g ~n_constraints:4 ~utilization:0.6 ~periods:[ 8; 12 ] in
    (* Valid by construction (Model.make validates); at least one task
       graph should be a genuine DAG (not a pure chain) over the run. *)
    List.iter
      (fun (c : Timing.t) ->
        checkb "compatible" true
          (Task_graph.compatible m.Model.comm c.Timing.graph = Ok ()))
      m.Model.constraints
  done;
  (* Synthesis end-to-end on DAG-shaped workloads. *)
  let ok = ref 0 in
  for _ = 1 to 10 do
    let m = Mg.dag_model g ~n_constraints:3 ~utilization:0.5 ~periods:[ 8; 16 ] in
    match Rt_core.Synthesis.synthesize m with
    | Ok plan ->
        incr ok;
        checkb "verified" true
          (Rt_core.Latency.all_ok plan.Rt_core.Synthesis.verdicts)
    | Error _ -> ()
  done;
  checkb "most DAG workloads synthesize" true (!ok >= 7)

let test_unit_chain_model () =
  let g = Prng.create 10 in
  let m = Mg.unit_chain_model g ~n_constraints:4 ~n_elements:5 ~max_deadline:9 in
  List.iter
    (fun (c : Timing.t) ->
      let size = Task_graph.size c.Timing.graph in
      checkb "chain of 1 or 3" true (size = 1 || size = 3);
      checkb "unit weights" true
        (Timing.computation_time m.Model.comm c = size))
    m.Model.constraints

(* ------------------------------------------------------------------ *)
(* 3-PARTITION                                                         *)
(* ------------------------------------------------------------------ *)

let test_three_partition_solver_yes () =
  (* 1,2,3 / 1,2,3: b=6. *)
  let items = [| 1; 2; 3; 3; 2; 1 |] in
  match Npc.three_partition_solve items ~b:6 with
  | Some triples ->
      checki "two triples" 2 (List.length triples);
      List.iter
        (fun t ->
          checki "each sums to b" 6
            (List.fold_left (fun acc i -> acc + items.(i)) 0 t))
        triples
  | None -> Alcotest.fail "solvable instance"

let test_three_partition_solver_no () =
  checkb "wrong total" true (Npc.three_partition_solve [| 1; 1; 1 |] ~b:4 = None);
  checkb "not multiple of 3" true
    (Npc.three_partition_solve [| 1; 1 |] ~b:2 = None);
  (* Correct total but no partition: items 5,5,5,1,1,7 with b=12:
     triples must sum 12; 5+5+1=11, 5+1+7=13... check solver says no.
     5+5+... hmm ensure truly unsolvable: {5,5,2} no 2... total=24 ok.
     options: (5,5,1)=11 no; (5,5,7)=17; (5,1,7)=13; (1,1,7)=9;
     (5,1,1)=7 -> none = 12. *)
  checkb "unsolvable" true
    (Npc.three_partition_solve [| 5; 5; 5; 1; 1; 7 |] ~b:12 = None)

let test_three_partition_yes_generator () =
  let g = Prng.create 11 in
  for _ = 1 to 10 do
    let m = 1 + Prng.int g 3 in
    let b = 16 + Prng.int g 20 in
    let items = Npc.three_partition_yes g ~m ~b in
    checki "3m items" (3 * m) (Array.length items);
    checki "total mB" (m * b) (Array.fold_left ( + ) 0 items);
    Array.iter
      (fun a -> checkb "item in (b/4, b/2)" true (4 * a > b && 2 * a < b))
      items;
    checkb "generator emits solvable instances" true
      (Npc.three_partition_solve items ~b <> None)
  done

let test_reduction_shape () =
  let items = [| 5; 6; 7 |] in
  let m = Npc.reduction_model items ~b:18 in
  (* 1 separator + 3 items. *)
  checki "four constraints" 4 (List.length m.Model.constraints);
  let deadlines =
    List.map (fun (c : Timing.t) -> c.Timing.deadline) m.Model.constraints
    |> List.sort_uniq Int.compare
  in
  checki "all but one deadline equal" 2 (List.length deadlines);
  List.iter
    (fun (c : Timing.t) ->
      checki "single op" 1 (Task_graph.size c.Timing.graph))
    m.Model.constraints;
  checkb "separator atomic" true
    (not (Comm_graph.pipelinable m.Model.comm
            (Comm_graph.id_of_name m.Model.comm "sep")))

let test_reduction_witness_verifies () =
  let g = Prng.create 12 in
  for _ = 1 to 5 do
    let items = Npc.three_partition_yes g ~m:2 ~b:17 in
    match Npc.three_partition_solve items ~b:17 with
    | None -> Alcotest.fail "yes-instance"
    | Some triples ->
        let model, sched = Npc.witness_schedule items ~b:17 triples in
        checkb "witness schedule well-formed" true
          (Schedule.validate model.Model.comm sched = Ok ());
        checkb "witness verifies" true
          (Latency.all_ok (Latency.verify model sched))
  done

(* ------------------------------------------------------------------ *)
(* CYCLIC ORDERING                                                     *)
(* ------------------------------------------------------------------ *)

let test_cyclic_ordering_yes () =
  (* Identity order on 4 elements: (0,1,2) is clockwise. *)
  match Npc.cyclic_ordering_solve ~n:4 [ (0, 1, 2); (1, 2, 3); (2, 3, 0) ] with
  | Some perm -> checki "witness is a permutation" 4 (Array.length perm)
  | None -> Alcotest.fail "identity order satisfies these"

let test_cyclic_ordering_no () =
  (* (a,b,c) and (a,c,b) cannot both hold. *)
  checkb "contradictory triples" true
    (Npc.cyclic_ordering_solve ~n:3 [ (0, 1, 2); (0, 2, 1) ] = None)

let test_cyclic_ordering_invalid_input () =
  checkb "out of range" true
    (Npc.cyclic_ordering_solve ~n:3 [ (0, 1, 7) ] = None);
  checkb "repeated member" true
    (Npc.cyclic_ordering_solve ~n:3 [ (0, 0, 1) ] = None)

let test_cyclic_ordering_generator () =
  let g = Prng.create 13 in
  for _ = 1 to 10 do
    let triples = Npc.cyclic_ordering_yes g ~n:6 ~n_triples:8 in
    checki "count" 8 (List.length triples);
    checkb "solvable" true (Npc.cyclic_ordering_solve ~n:6 triples <> None)
  done

let test_cyclic_ordering_witness_satisfies () =
  let g = Prng.create 14 in
  let triples = Npc.cyclic_ordering_yes g ~n:5 ~n_triples:6 in
  match Npc.cyclic_ordering_solve ~n:5 triples with
  | None -> Alcotest.fail "yes-instance"
  | Some perm ->
      (* Check the witness directly. *)
      let pos = Array.make 5 0 in
      Array.iteri (fun i v -> pos.(v) <- i) perm;
      List.iter
        (fun (a, b, c) ->
          let rel x = (pos.(x) - pos.(a) + 5) mod 5 in
          checkb "clockwise" true (rel b < rel c && rel b > 0))
        triples

let () =
  Alcotest.run "rt_workload"
    [
      ( "dag_gen",
        [
          Alcotest.test_case "layered acyclic" `Quick test_layered_acyclic;
          Alcotest.test_case "layered connectivity" `Quick
            test_layered_connectivity;
          Alcotest.test_case "erdos-renyi" `Quick test_erdos_renyi;
          Alcotest.test_case "chain / fork-join" `Quick
            test_chain_and_fork_join;
        ] );
      ( "model_gen",
        [
          Alcotest.test_case "uunifast" `Quick test_uunifast_sums;
          Alcotest.test_case "single-op model" `Quick
            test_single_op_model_shape;
          Alcotest.test_case "theorem3 model" `Quick
            test_theorem3_model_premises;
          Alcotest.test_case "periodic chain model" `Quick
            test_periodic_chain_model;
          Alcotest.test_case "shared block model" `Quick
            test_shared_block_model;
          Alcotest.test_case "dag model" `Quick test_dag_model;
          Alcotest.test_case "unit chain model" `Quick test_unit_chain_model;
        ] );
      ( "three-partition",
        [
          Alcotest.test_case "solver yes" `Quick test_three_partition_solver_yes;
          Alcotest.test_case "solver no" `Quick test_three_partition_solver_no;
          Alcotest.test_case "yes generator" `Quick
            test_three_partition_yes_generator;
          Alcotest.test_case "reduction shape" `Quick test_reduction_shape;
          Alcotest.test_case "witness verifies" `Slow
            test_reduction_witness_verifies;
        ] );
      ( "cyclic-ordering",
        [
          Alcotest.test_case "yes" `Quick test_cyclic_ordering_yes;
          Alcotest.test_case "no" `Quick test_cyclic_ordering_no;
          Alcotest.test_case "invalid input" `Quick
            test_cyclic_ordering_invalid_input;
          Alcotest.test_case "generator" `Quick test_cyclic_ordering_generator;
          Alcotest.test_case "witness satisfies" `Quick
            test_cyclic_ordering_witness_satisfies;
        ] );
    ]
