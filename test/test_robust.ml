(* Tests for the fault-tolerant execution subsystem: Criticality,
   Modes (derivation + mode-change protocol), Timing_fault, Watchdog
   and the Robust_runtime replay engine. *)

open Rt_core
module Tf = Rt_sim.Timing_fault
module Wd = Rt_sim.Watchdog
module Rr = Rt_sim.Robust_runtime

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Fixture: the degraded-modes flight-control scenario                  *)
(* ------------------------------------------------------------------ *)

let comm =
  Comm_graph.create
    ~elements:
      [
        ("gyro", 1, true);
        ("ctl", 2, true);
        ("act", 1, true);
        ("nav", 2, true);
        ("tlm", 2, true);
      ]
    ~edges:[ ("gyro", "ctl"); ("ctl", "act") ]

let id = Comm_graph.id_of_name comm
let chain names = Task_graph.of_chain (List.map id names)

let model =
  Model.make ~comm
    ~constraints:
      [
        Timing.make ~name:"attitude"
          ~graph:(chain [ "gyro"; "ctl"; "act" ])
          ~period:12 ~deadline:12 ~kind:Timing.Periodic;
        Timing.make ~name:"navigation"
          ~graph:(Task_graph.singleton (id "nav"))
          ~period:24 ~deadline:24 ~kind:Timing.Periodic;
        Timing.make ~name:"telemetry"
          ~graph:(Task_graph.singleton (id "tlm"))
          ~period:12 ~deadline:12 ~kind:Timing.Periodic;
      ]

let crit =
  match
    Criticality.make model
      [
        ("attitude", Criticality.High);
        ("navigation", Criticality.Medium);
        ("telemetry", Criticality.Low);
      ]
  with
  | Ok a -> a
  | Error errs -> failwith (String.concat "; " errs)

let derivation = { Modes.stretch = 2; max_hyperperiod = 10_000 }

let modes =
  match Modes.derive ~derivation model crit with
  | Ok ms -> ms
  | Error e -> failwith e

let watchdog = { Wd.check_period = 4; stall_limit = 16 }

let overrun_faults =
  [ Tf.overrun ~elem:(id "tlm") ~from:30 ~until:66 ~extra:6 ]

let run_with ?(faults = overrun_faults) ?(horizon = 144) policy =
  Rr.run ~crit ~faults ~policy ~watchdog ~readmit_after:24 ~horizon
    ~arrivals:[] modes

(* ------------------------------------------------------------------ *)
(* Criticality                                                         *)
(* ------------------------------------------------------------------ *)

let test_criticality_basics () =
  checkb "order" true
    (Criticality.compare_level Criticality.Low Criticality.High < 0);
  checkb "at_least reflexive" true
    (Criticality.at_least Criticality.Medium Criticality.Medium);
  checkb "default is High" true
    (Criticality.level_of [] "anything" = Criticality.High);
  checkb "round trip" true
    (List.for_all
       (fun l ->
         Criticality.level_of_string (Criticality.level_to_string l) = Ok l)
       Criticality.all_levels);
  checkb "med alias" true
    (Criticality.level_of_string "MED" = Ok Criticality.Medium)

let test_criticality_validation () =
  checkb "unknown name rejected" true
    (match Criticality.make model [ ("nope", Criticality.Low) ] with
    | Error _ -> true
    | Ok _ -> false);
  checkb "duplicate rejected" true
    (match
       Criticality.make model
         [ ("attitude", Criticality.Low); ("attitude", Criticality.High) ]
     with
    | Error _ -> true
    | Ok _ -> false)

let test_criticality_spec () =
  match Criticality.of_spec "telemetry=low,navigation=medium" with
  | Error e -> Alcotest.fail e
  | Ok a ->
      checkb "parsed" true
        (Criticality.level_of a "telemetry" = Criticality.Low
        && Criticality.level_of a "navigation" = Criticality.Medium);
      let back = Criticality.of_spec (Criticality.to_spec a) in
      checkb "round trip" true (back = Ok a);
      checkb "garbage rejected" true
        (match Criticality.of_spec "telemetry" with
        | Error _ -> true
        | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Modes                                                               *)
(* ------------------------------------------------------------------ *)

let test_mode_family () =
  checki "three modes" 3 (List.length modes);
  checks "primary first" "primary" (List.hd modes).Modes.name;
  (match Modes.find modes "degraded-medium" with
  | None -> Alcotest.fail "degraded-medium exists"
  | Some md ->
      checkb "telemetry shed" true (md.Modes.dropped = [ "telemetry" ]);
      checkb "navigation stretched 2x" true
        (md.Modes.stretched = [ ("navigation", 24, 48) ]);
      (* The stretched constraint really is in the degraded model. *)
      let nav =
        List.find
          (fun (c : Timing.t) -> c.name = "navigation")
          md.Modes.model.Model.constraints
      in
      checki "stretched period" 48 nav.Timing.period;
      checki "stretched deadline" 48 nav.Timing.deadline);
  match Modes.find modes "degraded-high" with
  | None -> Alcotest.fail "degraded-high exists"
  | Some md ->
      checkb "only attitude retained" true
        (List.map
           (fun (c : Timing.t) -> c.name)
           md.Modes.model.Model.constraints
        = [ "attitude" ]);
      checkb "schedule feasible" true
        (List.for_all
           (fun (v : Latency.verdict) -> v.ok)
           md.Modes.plan.Synthesis.verdicts)

let test_mode_async_stretch () =
  (* Asynchronous constraints keep their separation — only the
     deadline stretches: the environment cannot be slowed down. *)
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"attitude"
            ~graph:(chain [ "gyro"; "ctl"; "act" ])
            ~period:12 ~deadline:12 ~kind:Timing.Periodic;
          Timing.make ~name:"alarm"
            ~graph:(Task_graph.singleton (id "tlm"))
            ~period:20 ~deadline:8 ~kind:Timing.Asynchronous;
        ]
  in
  let a =
    match Criticality.make m [ ("alarm", Criticality.Medium) ] with
    | Ok a -> a
    | Error e -> failwith (String.concat ";" e)
  in
  match Modes.degrade ~derivation m a ~threshold:Criticality.Medium with
  | Error e -> Alcotest.fail e
  | Ok md ->
      let alarm =
        List.find
          (fun (c : Timing.t) -> c.name = "alarm")
          md.Modes.model.Model.constraints
      in
      checki "separation kept" 20 alarm.Timing.period;
      checki "deadline stretched" 16 alarm.Timing.deadline

let test_mode_all_shed_fails () =
  let a =
    match
      Criticality.make model
        [
          ("attitude", Criticality.Low);
          ("navigation", Criticality.Low);
          ("telemetry", Criticality.Low);
        ]
    with
    | Ok a -> a
    | Error e -> failwith (String.concat ";" e)
  in
  checkb "empty mode rejected" true
    (match Modes.degrade model a ~threshold:Criticality.High with
    | Error _ -> true
    | Ok _ -> false)

let test_transition_bound () =
  checki "bound is the check period" 4 (Modes.transition_slots ~check_period:4);
  checki "per-slot watchdog bound" 1 (Modes.transition_slots ~check_period:1);
  checkb "rejects non-positive" true
    (try
       ignore (Modes.transition_slots ~check_period:0);
       false
     with Invalid_argument _ -> true);
  (* Every mode of the fixture absorbs the transition. *)
  checkb "fixture admits transition" true
    (List.for_all
       (fun md -> Modes.admits_transition ~check_period:4 md = Ok ())
       modes);
  (* A deadline equal to the response bound cannot absorb any
     transition slots. *)
  let tight =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"tight"
            ~graph:(chain [ "gyro"; "ctl"; "act" ])
            ~period:4 ~deadline:4 ~kind:Timing.Periodic;
        ]
  in
  match Modes.primary tight with
  | Error e -> Alcotest.fail e
  | Ok md ->
      checkb "tight mode rejected" true
        (match Modes.admits_transition ~check_period:4 md with
        | Error _ -> true
        | Ok () -> false)

(* ------------------------------------------------------------------ *)
(* Timing_fault                                                        *)
(* ------------------------------------------------------------------ *)

let test_fault_plan_validation () =
  checkb "good plan" true (Tf.validate comm overrun_faults = Ok ());
  checkb "bad element" true
    (match Tf.validate comm [ Tf.overrun ~elem:99 ~from:0 ~until:5 ~extra:1 ]
     with
    | Error _ -> true
    | Ok () -> false);
  checkb "empty window" true
    (match Tf.validate comm [ Tf.transient ~elem:0 ~from:5 ~until:5 ] with
    | Error _ -> true
    | Ok () -> false);
  checkb "non-positive extra" true
    (match Tf.validate comm [ Tf.overrun ~elem:0 ~from:0 ~until:5 ~extra:0 ]
     with
    | Error _ -> true
    | Ok () -> false)

let test_fault_demand () =
  let plan = overrun_faults in
  let tlm = id "tlm" in
  checki "inside window" 8 (Tf.demand plan ~weight:2 ~elem:tlm ~start:30);
  checki "before window" 2 (Tf.demand plan ~weight:2 ~elem:tlm ~start:29);
  checki "at until" 2 (Tf.demand plan ~weight:2 ~elem:tlm ~start:66);
  checki "other element" 2 (Tf.demand plan ~weight:2 ~elem:(id "ctl") ~start:30);
  let stuck = [ Tf.stuck ~elem:tlm ~from:0 ~until:10 ] in
  checkb "stuck is unbounded" true
    (Tf.demand stuck ~weight:2 ~elem:tlm ~start:3 = max_int);
  let transient = [ Tf.transient ~elem:tlm ~from:0 ~until:10 ] in
  checki "transient keeps demand" 2
    (Tf.demand transient ~weight:2 ~elem:tlm ~start:3);
  checkb "transient loses output" true
    (not (Tf.yields_output transient ~elem:tlm ~start:3));
  checkb "overrun keeps output" true (Tf.yields_output plan ~elem:tlm ~start:30)

let test_fault_of_string () =
  (match Tf.of_string comm "overrun:tlm:30-66:+6" with
  | Error e -> Alcotest.fail e
  | Ok f -> checkb "parsed overrun" true (f = List.hd overrun_faults));
  (match Tf.of_string comm "stuck:nav:5-9" with
  | Error e -> Alcotest.fail e
  | Ok f -> checkb "parsed stuck" true (f = Tf.stuck ~elem:(id "nav") ~from:5 ~until:9));
  checkb "unknown element rejected" true
    (match Tf.of_string comm "overrun:zz:0-5:+1" with
    | Error _ -> true
    | Ok _ -> false);
  checkb "garbage rejected" true
    (match Tf.of_string comm "meltdown:tlm:0-5" with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)
(* ------------------------------------------------------------------ *)

let test_watchdog_detection () =
  let wd = Wd.create { Wd.check_period = 4; stall_limit = 6 } in
  checki "bound" 3 (Wd.detection_bound { Wd.check_period = 4; stall_limit = 6 });
  (* Budget exhausted at t=10 (not a check instant): clean until the
     next multiple of 4. *)
  let v =
    Wd.check wd ~now:10 ~elem:0 ~start:8 ~nominal_finish:10 ~consumed:2
      ~budget:2
  in
  checkb "no check off-instant" true (v = Wd.Clean);
  (match
     Wd.check wd ~now:12 ~elem:0 ~start:8 ~nominal_finish:10 ~consumed:4
       ~budget:2
   with
  | Wd.Detected d ->
      checki "latency" 2 d.Wd.latency;
      checki "detected at" 12 d.Wd.detected_at
  | _ -> Alcotest.fail "expected detection");
  (* Same execution again: deduplicated. *)
  let v =
    Wd.check wd ~now:16 ~elem:0 ~start:8 ~nominal_finish:10 ~consumed:7
      ~budget:2
  in
  checkb "reported once" true (v = Wd.Clean);
  (* Overshoot reaching the stall limit escalates. *)
  (match
     Wd.check wd ~now:20 ~elem:0 ~start:8 ~nominal_finish:10 ~consumed:8
       ~budget:2
   with
  | Wd.Stalled _ -> ()
  | _ -> Alcotest.fail "expected stall");
  checki "one detection recorded" 1 (List.length (Wd.detections wd))

let test_watchdog_per_slot () =
  (* check_period 1 detects at the very instant the budget runs out:
     zero latency. *)
  let wd = Wd.create { Wd.check_period = 1; stall_limit = 4 } in
  match
    Wd.check wd ~now:5 ~elem:1 ~start:3 ~nominal_finish:5 ~consumed:2 ~budget:2
  with
  | Wd.Detected d -> checki "zero latency" 0 d.Wd.latency
  | _ -> Alcotest.fail "expected detection"

(* ------------------------------------------------------------------ *)
(* Robust_runtime: nominal behaviour                                   *)
(* ------------------------------------------------------------------ *)

let test_robust_no_faults_matches_runtime () =
  (* Without faults the robust engine must agree with the plain replay
     on every completion. *)
  let r = Rr.run ~crit ~watchdog ~horizon:96 ~arrivals:[] modes in
  checki "no misses" 0 r.Rr.misses;
  checki "no events" 0 (List.length r.Rr.events);
  checki "no switches" 0 r.Rr.mode_switches;
  let primary = List.hd modes in
  let plain =
    Rt_sim.Runtime.run primary.Modes.model
      primary.Modes.plan.Synthesis.schedule ~horizon:96 ~arrivals:[]
  in
  let completions inv_list =
    List.sort compare
      (List.filter_map
         (fun (name, arrival, completion) ->
           Option.map (fun c -> (name, arrival, c)) completion)
         inv_list)
  in
  let robust =
    completions
      (List.map
         (fun (i : Rr.invocation) ->
           (i.Rr.constraint_name, i.Rr.arrival, i.Rr.completion))
         r.Rr.invocations)
  and reference =
    completions
      (List.map
         (fun (i : Rt_sim.Runtime.invocation) ->
           (i.constraint_name, i.arrival, i.completion))
         plain.Rt_sim.Runtime.invocations)
  in
  checkb "completions agree with Runtime" true (robust = reference)

let test_robust_rejects_bad_input () =
  let expect_invalid f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  checkb "empty modes" true
    (expect_invalid (fun () -> Rr.run ~horizon:10 ~arrivals:[] []));
  checkb "bad fault plan" true
    (expect_invalid (fun () ->
         Rr.run ~faults:[ Tf.overrun ~elem:99 ~from:0 ~until:1 ~extra:1 ]
           ~horizon:10 ~arrivals:[] modes));
  checkb "unknown degrade target" true
    (expect_invalid (fun () ->
         Rr.run ~policy:(Rr.Degrade_to "nope") ~horizon:10 ~arrivals:[] modes));
  checkb "degrade to primary" true
    (expect_invalid (fun () ->
         Rr.run ~policy:(Rr.Degrade_to "primary") ~horizon:10 ~arrivals:[]
           modes))

(* ------------------------------------------------------------------ *)
(* Robust_runtime: detection and recovery policies                     *)
(* ------------------------------------------------------------------ *)

let detections_of r = r.Rr.detections

let test_overrun_detected_within_bound () =
  let r = run_with Rr.Abort_job in
  let ds = detections_of r in
  checkb "at least one detection" true (ds <> []);
  let bound = Wd.detection_bound watchdog in
  List.iter
    (fun (d : Wd.detection) ->
      checkb "latency within analyzed bound" true
        (d.Wd.latency >= 0 && d.Wd.latency <= bound);
      checki "offending element" (id "tlm") d.Wd.elem)
    ds

let test_abort_policy () =
  let r = run_with Rr.Abort_job in
  let aborted =
    List.filter (function Rr.Aborted _ -> true | _ -> false) r.Rr.events
  in
  checkb "every detection aborts" true
    (List.length aborted = List.length (detections_of r));
  checki "never leaves primary" 0 r.Rr.mode_switches;
  (* High criticality survives even the crude policy here: aborts cap
     the stolen slots at budget + detection latency. *)
  let high =
    List.find
      (fun c -> c.Rt_sim.Stats.level = Criticality.High)
      (Rt_sim.Stats.by_criticality r)
  in
  checki "no high-criticality miss" 0 high.Rt_sim.Stats.level_misses

let test_skip_next_policy () =
  let r = run_with Rr.Skip_next in
  checkb "skips scheduled" true
    (List.exists (function Rr.Skip_scheduled _ -> true | _ -> false)
       r.Rr.events);
  (* The overrun runs to completion under Skip_next, so telemetry
     output is preserved (at the cost of more interference). *)
  checkb "no aborts" true
    (not (List.exists (function Rr.Aborted _ -> true | _ -> false) r.Rr.events))

let test_retry_policy () =
  (* A stuck element defeats retry: after max_attempts the runtime
     gives up.  The window spans several schedule cycles because each
     failed attempt plus its backoff consumes a whole cycle's worth of
     the element's slots. *)
  let faults = [ Tf.stuck ~elem:(id "tlm") ~from:30 ~until:102 ] in
  let r =
    run_with ~faults (Rr.Retry { max_attempts = 2; backoff = 2 })
  in
  checkb "retries scheduled" true
    (List.exists (function Rr.Retry_scheduled _ -> true | _ -> false)
       r.Rr.events);
  checkb "eventually gives up" true
    (List.exists (function Rr.Gave_up _ -> true | _ -> false) r.Rr.events)

let test_stall_killed () =
  let faults = [ Tf.stuck ~elem:(id "tlm") ~from:30 ~until:42 ] in
  let r = run_with ~faults Rr.Skip_next in
  checkb "stall killed" true
    (List.exists (function Rr.Stall_killed _ -> true | _ -> false) r.Rr.events)

(* ------------------------------------------------------------------ *)
(* Robust_runtime: degradation — the acceptance scenario               *)
(* ------------------------------------------------------------------ *)

let test_degradation_acceptance () =
  let r = run_with (Rr.Degrade_to "degraded-high") in
  (* 1. The injected overrun is detected within the analyzed bound. *)
  let ds = detections_of r in
  checkb "detected" true (ds <> []);
  let bound = Wd.detection_bound watchdog in
  List.iter
    (fun (d : Wd.detection) ->
      checkb "within bound" true (d.Wd.latency <= bound))
    ds;
  (* 2. The runtime switches to the degraded schedule and sheds the
     expendable constraints instead of missing them. *)
  checkb "degraded" true
    (List.exists
       (function Rr.Degraded { to_mode; _ } -> to_mode = "degraded-high" | _ -> false)
       r.Rr.events);
  checkb "slots spent degraded" true (r.Rr.degraded_slots > 0);
  checkb "telemetry shed while degraded" true (r.Rr.shed > 0);
  (* 3. Zero high-criticality misses throughout. *)
  let high =
    List.find
      (fun c -> c.Rt_sim.Stats.level = Criticality.High)
      (Rt_sim.Stats.by_criticality r)
  in
  checki "high-criticality misses" 0 high.Rt_sim.Stats.level_misses;
  checki "high-criticality shed" 0 high.Rt_sim.Stats.level_shed;
  (* 4. The primary mode is re-admitted once the fault clears, and the
     run ends back in primary. *)
  checkb "re-admitted" true
    (List.exists (function Rr.Readmitted _ -> true | _ -> false) r.Rr.events);
  checks "ends in primary" "primary" r.Rr.final_mode;
  checki "one round trip" 2 r.Rr.mode_switches;
  (* 5. Invocations arriving while degraded are attributed to the
     degraded mode. *)
  checkb "mode recorded per invocation" true
    (List.exists
       (fun (i : Rr.invocation) -> i.Rr.mode = "degraded-high")
       r.Rr.invocations)

let test_degradation_beats_abort () =
  let abort = run_with Rr.Abort_job in
  let deg = run_with (Rr.Degrade_to "degraded-high") in
  checkb "degradation misses fewer deadlines" true
    (deg.Rr.misses < abort.Rr.misses)

let test_readmission_timing () =
  let r = run_with (Rr.Degrade_to "degraded-high") in
  let degrade_at =
    List.filter_map
      (function Rr.Degraded { at; _ } -> Some at | _ -> None)
      r.Rr.events
  and readmit_at =
    List.filter_map
      (function Rr.Readmitted { at } -> Some at | _ -> None)
      r.Rr.events
  in
  match (degrade_at, readmit_at) with
  | [ d ], [ re ] ->
      checkb "readmission after the quiet period" true (re - d >= 24);
      (* The fault window ends at 66; re-admission cannot precede
         24 clean slots after the last dirty instant. *)
      checkb "not while faults are live" true (re >= 54)
  | _ -> Alcotest.fail "expected exactly one degrade and one readmit"

(* ------------------------------------------------------------------ *)
(* Stats integration                                                   *)
(* ------------------------------------------------------------------ *)

let test_stats_by_criticality () =
  let r = run_with (Rr.Degrade_to "degraded-high") in
  let cs = Rt_sim.Stats.by_criticality r in
  checki "three levels, always" 3 (List.length cs);
  List.iter
    (fun c ->
      checki "served + shed = total"
        c.Rt_sim.Stats.total
        (c.Rt_sim.Stats.served + c.Rt_sim.Stats.level_shed);
      checkb "misses bounded by served" true
        (c.Rt_sim.Stats.level_misses <= c.Rt_sim.Stats.served))
    cs;
  let totals =
    List.fold_left (fun acc c -> acc + c.Rt_sim.Stats.total) 0 cs
  in
  checki "rollup covers every invocation" (List.length r.Rr.invocations) totals

let () =
  Alcotest.run "rt_robust"
    [
      ( "criticality",
        [
          Alcotest.test_case "basics" `Quick test_criticality_basics;
          Alcotest.test_case "validation" `Quick test_criticality_validation;
          Alcotest.test_case "spec parsing" `Quick test_criticality_spec;
        ] );
      ( "modes",
        [
          Alcotest.test_case "family" `Quick test_mode_family;
          Alcotest.test_case "async stretch" `Quick test_mode_async_stretch;
          Alcotest.test_case "all shed fails" `Quick test_mode_all_shed_fails;
          Alcotest.test_case "transition bound" `Quick test_transition_bound;
        ] );
      ( "timing_fault",
        [
          Alcotest.test_case "validation" `Quick test_fault_plan_validation;
          Alcotest.test_case "demand" `Quick test_fault_demand;
          Alcotest.test_case "of_string" `Quick test_fault_of_string;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "detection" `Quick test_watchdog_detection;
          Alcotest.test_case "per-slot" `Quick test_watchdog_per_slot;
        ] );
      ( "robust_runtime",
        [
          Alcotest.test_case "faultless = Runtime" `Quick
            test_robust_no_faults_matches_runtime;
          Alcotest.test_case "rejects bad input" `Quick
            test_robust_rejects_bad_input;
          Alcotest.test_case "detection within bound" `Quick
            test_overrun_detected_within_bound;
          Alcotest.test_case "abort policy" `Quick test_abort_policy;
          Alcotest.test_case "skip-next policy" `Quick test_skip_next_policy;
          Alcotest.test_case "retry policy" `Quick test_retry_policy;
          Alcotest.test_case "stall killed" `Quick test_stall_killed;
          Alcotest.test_case "degradation acceptance" `Quick
            test_degradation_acceptance;
          Alcotest.test_case "degradation beats abort" `Quick
            test_degradation_beats_abort;
          Alcotest.test_case "readmission timing" `Quick
            test_readmission_timing;
        ] );
      ( "stats",
        [
          Alcotest.test_case "by criticality" `Quick test_stats_by_criticality;
        ] );
    ]
