(* Tests for the observability layer (Rt_obs): the metrics registry and
   its log-linear histograms, the span tracer's Chrome trace_event
   output, and the bench JSON comparator behind tools/bench_check. *)

open Rt_core
module Metrics = Rt_obs.Metrics
module Tracer = Rt_obs.Tracer
module Json = Rt_obs.Json
module BD = Rt_obs.Bench_diff
module Pool = Rt_par.Pool

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let example = Rt_workload.Suite.control_system Rt_workload.Suite.default_params

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_roundtrip () =
  let c = Metrics.counter "test/ctr" in
  Metrics.incr c;
  Metrics.add c 4;
  checki "incr + add" 5 (Metrics.value c);
  (* registration is get-or-create: same name, same cell *)
  Metrics.incr (Metrics.counter "test/ctr");
  checki "shared cell" 6 (Metrics.value c)

let test_gauge_roundtrip () =
  let g = Metrics.gauge "test/gauge" in
  Metrics.set g 7;
  checki "set" 7 (Metrics.gauge_value g);
  Metrics.set g (-3);
  checki "gauges may go negative" (-3) (Metrics.gauge_value g)

let test_kind_clash_rejected () =
  ignore (Metrics.counter "test/kind");
  checkb "histogram on a counter name" true
    (try
       ignore (Metrics.histogram "test/kind");
       false
     with Invalid_argument _ -> true)

let test_histogram_small_values_exact () =
  let h = Metrics.histogram "test/small" in
  List.iter (Metrics.observe h) [ 1; 2; 3 ];
  (* values below 32 are recorded exactly: the bucket bound is the value *)
  checki "bound_of_value exact below 32" 31 (Metrics.bound_of_value 31);
  checkb "p50" true (Metrics.quantile h 0.5 = Some 2);
  checkb "p100" true (Metrics.quantile h 1.0 = Some 3);
  checkb "min" true (Metrics.h_min h = Some 1);
  checkb "max" true (Metrics.h_max h = Some 3);
  checki "count" 3 (Metrics.h_count h);
  checki "sum" 6 (Metrics.h_sum h)

let test_histogram_clamps_negative () =
  let h = Metrics.histogram "test/clamp" in
  Metrics.observe h (-5);
  checkb "negative clamps to 0" true
    (Metrics.h_min h = Some 0 && Metrics.quantile h 0.5 = Some 0)

let test_empty_histogram () =
  let h = Metrics.histogram "test/empty" in
  checkb "no quantile when empty" true
    (Metrics.quantile h 0.5 = None && Metrics.h_min h = None
   && Metrics.h_max h = None);
  checki "zero count" 0 (Metrics.h_count h)

(* Bump one counter and one histogram from every pool worker: Atomic
   cells must not lose updates.  This is the regression test for the old
   Perf.time race (plain int refs accumulated cross-domain). *)
let test_metrics_domain_safe () =
  let c = Metrics.counter "test/par-ctr" in
  let h = Metrics.histogram "test/par-hist" in
  Pool.with_pool ~jobs:4 (fun p ->
      ignore
        (Pool.parallel_map p
           (fun _ ->
             for _ = 1 to 10_000 do
               Metrics.incr c
             done;
             for i = 1 to 100 do
               Metrics.observe h i
             done;
             0)
           (Array.init 8 Fun.id)));
  checki "no lost increments" 80_000 (Metrics.value c);
  checki "no lost observations" 800 (Metrics.h_count h);
  checki "no torn sums" (8 * 5050) (Metrics.h_sum h)

let test_perf_time_domain_safe () =
  Pool.with_pool ~jobs:4 (fun p ->
      ignore
        (Pool.parallel_map p
           (fun i ->
             Rt_par.Perf.time "obs-par-stage" (fun () ->
                 Array.fold_left ( + ) i (Array.init 1000 Fun.id)))
           (Array.init 8 Fun.id)));
  let h = Metrics.histogram "stage/obs-par-stage" in
  checki "one observation per timed call" 8 (Metrics.h_count h);
  match List.assoc_opt "obs-par-stage" (Rt_par.Perf.stage_seconds ()) with
  | Some s -> checkb "nonnegative accumulated stage time" true (s >= 0.0)
  | None -> Alcotest.fail "stage missing from stage_seconds"

(* ------------------------------------------------------------------ *)
(* Histogram quantiles vs a sorted-list oracle                         *)
(* ------------------------------------------------------------------ *)

let hist_id = ref 0

let oracle_rank q n =
  max 1 (min n (int_of_float (ceil (q *. float_of_int n))))

let prop_hist_matches_oracle =
  QCheck.Test.make ~count:200
    ~name:"histogram quantiles match sorted-list oracle"
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 2_000_000))
    (fun xs ->
      incr hist_id;
      let h =
        Metrics.histogram (Printf.sprintf "test/oracle-%d" !hist_id)
      in
      List.iter (Metrics.observe h) xs;
      let sorted = List.sort compare xs in
      let n = List.length xs in
      let quantile_ok q =
        (* bucketing is monotone, so the bucket walk must select exactly
           the bucket of the rank-th smallest observation *)
        let expected =
          Metrics.bound_of_value (List.nth sorted (oracle_rank q n - 1))
        in
        Metrics.quantile h q = Some expected
      in
      Metrics.h_count h = n
      && Metrics.h_sum h = List.fold_left ( + ) 0 xs
      && Metrics.h_min h = Some (List.hd sorted)
      && Metrics.h_max h = Some (List.nth sorted (n - 1))
      && List.for_all quantile_ok [ 0.0; 0.5; 0.9; 0.95; 0.99; 1.0 ])

(* ------------------------------------------------------------------ *)
(* Tracer: disabled path                                               *)
(* ------------------------------------------------------------------ *)

let test_tracer_disabled_zero_events () =
  Tracer.clear ();
  checkb "disabled by default" true (not (Tracer.enabled ()));
  checki "span is a passthrough" 42 (Tracer.span "probe" (fun () -> 42));
  Tracer.instant "nothing";
  Tracer.complete ~tid:0 ~ts_us:0 ~dur_us:5 "nothing";
  Tracer.instant_at ~tid:0 ~ts_us:0 "nothing";
  Tracer.track_name ~tid:0 "nothing";
  checki "zero events recorded" 0 (List.length (Tracer.drain ()));
  checki "zero drops" 0 (Tracer.dropped ())

let test_tracer_span_reraises () =
  Tracer.enable ();
  checkb "span reraises and still closes" true
    (try
       Tracer.span "boom" (fun () -> failwith "boom")
     with Failure _ -> true);
  Tracer.disable ();
  let evs = Tracer.drain () in
  Tracer.clear ();
  let bs = List.filter (fun e -> e.Tracer.ph = Tracer.B) evs
  and es = List.filter (fun e -> e.Tracer.ph = Tracer.E) evs in
  checkb "B/E balanced on exception" true
    (List.length bs = 1 && List.length es = 1)

(* ------------------------------------------------------------------ *)
(* Tracer: golden Chrome-trace file                                    *)
(* ------------------------------------------------------------------ *)

let get_str key ev =
  match Json.member key ev with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "event missing string field %S" key

let get_num key ev =
  match Json.member key ev with
  | Some (Json.Num n) -> n
  | _ -> Alcotest.failf "event missing numeric field %S" key

(* Run a workload touching four instrumented subsystems under the
   tracer, then validate the written file as a well-formed Chrome trace:
   every B has a matching E (stack discipline per track), wall-clock
   timestamps are strictly monotone per track, X durations are
   nonnegative, and the four categories all appear. *)
let test_trace_golden () =
  let file = Filename.temp_file "rt_obs_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Tracer.with_trace ~file (fun () ->
          (match Synthesis.synthesize example with
          | Ok plan ->
              ignore
                (Rt_sim.Runtime.run plan.Synthesis.model_used
                   plan.Synthesis.schedule ~horizon:40 ~arrivals:[])
          | Error _ -> Alcotest.fail "example model must synthesize");
          ignore (Exact.solve_single_ops Rt_workload.Suite.tiny_two_ops));
      Tracer.clear ();
      let events =
        match Json.parse_file file with
        | Error e -> Alcotest.failf "trace does not parse: %s" e
        | Ok json -> (
            match Option.bind (Json.member "traceEvents" json) Json.to_list with
            | Some evs -> evs
            | None -> Alcotest.fail "no traceEvents array")
      in
      checkb "trace is non-empty" true (events <> []);
      let cats = Hashtbl.create 8 in
      let tracks = Hashtbl.create 8 in
      List.iter
        (fun ev ->
          let name = get_str "name" ev in
          let ph = get_str "ph" ev in
          let pid = get_num "pid" ev in
          let tid = get_num "tid" ev in
          let ts = get_num "ts" ev in
          checkb "event has a name" true (name <> "");
          checkb "known phase" true
            (List.mem ph [ "B"; "E"; "X"; "i"; "M" ]);
          checkb "nonnegative ts" true (ts >= 0.0);
          Hashtbl.replace cats (get_str "cat" ev) ();
          if ph = "X" then
            checkb "X has nonnegative dur" true (get_num "dur" ev >= 0.0);
          let key = (pid, tid) in
          let prev = try Hashtbl.find tracks key with Not_found -> [] in
          Hashtbl.replace tracks key ((name, ph, ts) :: prev))
        events;
      (* per-track stack discipline and wall-clock monotonicity *)
      Hashtbl.iter
        (fun (pid, _) evs ->
          let evs = List.rev evs in
          let stack = ref [] in
          let last_ts = ref (-1.0) in
          List.iter
            (fun (name, ph, ts) ->
              match ph with
              | "B" ->
                  if pid = 1.0 then (
                    checkb "strictly monotone wall ts" true (ts > !last_ts);
                    last_ts := ts);
                  stack := name :: !stack
              | "E" -> (
                  if pid = 1.0 then (
                    checkb "strictly monotone wall ts" true (ts > !last_ts);
                    last_ts := ts);
                  match !stack with
                  | top :: rest ->
                      Alcotest.check Alcotest.string "E matches open B" top
                        name;
                      stack := rest
                  | [] -> Alcotest.failf "E %S with no open B" name)
              | _ -> ())
            evs;
          checkb "all spans closed" true (!stack = []))
        tracks;
      List.iter
        (fun cat ->
          checkb (Printf.sprintf "category %S present" cat) true
            (Hashtbl.mem cats cat))
        [ "synthesis"; "exact"; "latency"; "sim" ])

(* ------------------------------------------------------------------ *)
(* Bench_diff (the logic behind tools/bench_check)                     *)
(* ------------------------------------------------------------------ *)

let run_of_string s =
  match Json.parse s with
  | Error e -> Alcotest.failf "fixture does not parse: %s" e
  | Ok j -> (
      match BD.of_json j with
      | Ok r -> r
      | Error e -> Alcotest.failf "fixture rejected: %s" e)

let baseline =
  run_of_string
    {|{"benchmarks":[{"name":"solve","optimized_seconds":0.5,"nodes":100},
                     {"name":"verify","optimized_seconds":0.2}],
       "counters":{"dfs_nodes":2036,"cache_hits":10}}|}

let default_checks =
  [
    { BD.metric = "optimized_seconds"; tol = 0.25; eps = 0.0;
      scope = `Benchmarks };
    { BD.metric = "dfs_nodes"; tol = 0.0; eps = 0.0; scope = `Counters };
  ]

let test_diff_baseline_vs_baseline () =
  let o =
    BD.diff ~checks:default_checks ~candidate:baseline ~reference:baseline ()
  in
  checkb "identical runs pass" true (BD.passed o);
  checki "two rows + one counter" 3 (List.length o.BD.findings)

let test_diff_flags_regression () =
  let regressed =
    run_of_string
      {|{"benchmarks":[{"name":"solve","optimized_seconds":1.0,"nodes":150},
                       {"name":"verify","optimized_seconds":0.2}],
         "counters":{"dfs_nodes":2100,"cache_hits":10}}|}
  in
  let o =
    BD.diff ~checks:default_checks ~candidate:regressed ~reference:baseline ()
  in
  checkb "regression detected" true (not (BD.passed o));
  checki "slower solve and higher counter both flagged" 2
    (List.length (List.filter (fun f -> not f.BD.ok) o.BD.findings))

let test_diff_eps_absorbs_noise () =
  let noisy =
    run_of_string
      {|{"benchmarks":[{"name":"solve","optimized_seconds":0.5004,"nodes":100},
                       {"name":"verify","optimized_seconds":0.2}],
         "counters":{"dfs_nodes":2036}}|}
  in
  let check ~eps =
    BD.diff
      ~checks:
        [ { BD.metric = "optimized_seconds"; tol = 0.0; eps;
            scope = `Benchmarks } ]
      ~candidate:noisy ~reference:baseline ()
  in
  checkb "within eps passes" true (BD.passed (check ~eps:0.001));
  checkb "without eps regresses" true (not (BD.passed (check ~eps:0.0)))

let test_diff_missing_benchmark () =
  let partial =
    run_of_string
      {|{"benchmarks":[{"name":"solve","optimized_seconds":0.5}],
         "counters":{"dfs_nodes":2036}}|}
  in
  let diff ~allow_missing =
    BD.diff ~allow_missing ~checks:default_checks ~candidate:partial
      ~reference:baseline ()
  in
  let strict = diff ~allow_missing:false in
  checkb "missing row is an error" true
    ((not (BD.passed strict)) && strict.BD.errors <> []);
  checkb "allow_missing downgrades to skip" true
    (BD.passed (diff ~allow_missing:true))

let test_diff_missing_counter () =
  let no_counter =
    run_of_string
      {|{"benchmarks":[{"name":"solve","optimized_seconds":0.5,"nodes":100},
                       {"name":"verify","optimized_seconds":0.2}],
         "counters":{"cache_hits":10}}|}
  in
  let o =
    BD.diff ~checks:default_checks ~candidate:no_counter ~reference:baseline ()
  in
  checkb "missing candidate counter is an error" true
    ((not (BD.passed o)) && o.BD.errors <> [])

(* ------------------------------------------------------------------ *)
(* Json reader                                                         *)
(* ------------------------------------------------------------------ *)

let test_json_parses_scalars () =
  checkb "number" true (Json.parse "-1.5e2" = Ok (Json.Num (-150.0)));
  checkb "escapes" true
    (Json.parse {|"aA\n"|} = Ok (Json.Str "aA\n"));
  checkb "null/bool" true
    (Json.parse "[null, true]" = Ok (Json.List [ Json.Null; Json.Bool true ]))

let test_json_rejects_garbage () =
  let bad s = match Json.parse s with Error _ -> true | Ok _ -> false in
  checkb "unterminated object" true (bad "{");
  checkb "trailing garbage" true (bad "[1,2] junk");
  checkb "bare word" true (bad "nope")

let test_json_accessors_total () =
  let j = Json.Obj [ ("x", Json.Num 1.0) ] in
  checkb "member miss" true (Json.member "y" j = None);
  checkb "to_list on obj" true (Json.to_list j = None);
  checkb "to_float on str" true (Json.to_float (Json.Str "s") = None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          ("counter roundtrip", `Quick, test_counter_roundtrip);
          ("gauge roundtrip", `Quick, test_gauge_roundtrip);
          ("kind clash rejected", `Quick, test_kind_clash_rejected);
          ("small values exact", `Quick, test_histogram_small_values_exact);
          ("negative observations clamp", `Quick,
           test_histogram_clamps_negative);
          ("empty histogram", `Quick, test_empty_histogram);
          ("atomic cells are domain-safe", `Quick, test_metrics_domain_safe);
          ("Perf.time is domain-safe", `Quick, test_perf_time_domain_safe);
          QCheck_alcotest.to_alcotest prop_hist_matches_oracle;
        ] );
      ( "tracer",
        [
          ("disabled tracing records nothing", `Quick,
           test_tracer_disabled_zero_events);
          ("span closes on exception", `Quick, test_tracer_span_reraises);
          ("golden Chrome trace", `Quick, test_trace_golden);
        ] );
      ( "bench-diff",
        [
          ("baseline vs baseline passes", `Quick,
           test_diff_baseline_vs_baseline);
          ("regression flagged", `Quick, test_diff_flags_regression);
          ("eps absorbs timing noise", `Quick, test_diff_eps_absorbs_noise);
          ("missing benchmark", `Quick, test_diff_missing_benchmark);
          ("missing counter", `Quick, test_diff_missing_counter);
        ] );
      ( "json",
        [
          ("scalars", `Quick, test_json_parses_scalars);
          ("garbage rejected", `Quick, test_json_rejects_garbage);
          ("accessors are total", `Quick, test_json_accessors_total);
        ] );
    ]
