(* Tests for the simulation layer: Event_queue, Arrivals, Runtime,
   Proc_sim and the value-carrying Data simulator. *)

open Rt_core
module Eq = Rt_sim.Event_queue
module Arr = Rt_sim.Arrivals
module Rtm = Rt_sim.Runtime
module Psim = Rt_sim.Proc_sim
module Data = Rt_sim.Data

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Event_queue                                                         *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let q = Eq.create () in
  List.iter
    (fun (t, v) -> Eq.push q ~time:t v)
    [ (5, "e"); (1, "a"); (3, "c"); (2, "b"); (4, "d") ];
  checki "size" 5 (Eq.size q);
  let order = ref [] in
  let rec drain () =
    match Eq.pop q with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.check (Alcotest.list Alcotest.string) "sorted by time"
    [ "a"; "b"; "c"; "d"; "e" ]
    (List.rev !order)

let test_heap_fifo_ties () =
  let q = Eq.create () in
  List.iter (fun v -> Eq.push q ~time:7 v) [ "x"; "y"; "z" ];
  let a = Eq.pop q and b = Eq.pop q in
  checkb "insertion order on ties" true (a = Some (7, "x") && b = Some (7, "y"))

let test_heap_pop_until () =
  let q = Eq.create () in
  List.iter (fun t -> Eq.push q ~time:t t) [ 1; 2; 3; 4; 5 ];
  let early = Eq.pop_until q 3 in
  checki "three popped" 3 (List.length early);
  checki "two remain" 2 (Eq.size q);
  Eq.clear q;
  checkb "cleared" true (Eq.is_empty q)

let test_heap_growth () =
  let q = Eq.create () in
  for i = 999 downto 0 do
    Eq.push q ~time:i i
  done;
  checki "1000 events" 1000 (Eq.size q);
  checkb "min first" true (Eq.peek q = Some (0, 0))

(* Randomized properties against a sorted-list reference model.  Each
   event carries a unique sequence number so FIFO tie-breaking is
   observable; the model sorts stably by time. *)

let model_sorted events =
  List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2) events

let drain q =
  let rec go acc =
    match Eq.pop q with Some e -> go (e :: acc) | None -> List.rev acc
  in
  go []

let test_heap_matches_model () =
  let g = Rt_graph.Prng.create 42 in
  for _ = 1 to 100 do
    let n = Rt_graph.Prng.int_in g 0 60 in
    let events =
      List.init n (fun seq -> (Rt_graph.Prng.int_in g 0 15, seq))
    in
    let q = Eq.create () in
    List.iter (fun (t, seq) -> Eq.push q ~time:t seq) events;
    checkb "drain order = stable sort" true (drain q = model_sorted events)
  done

let test_heap_interleaved_ops () =
  (* Random pushes and pops interleaved; after every operation the heap
     must agree with the reference model. *)
  let g = Rt_graph.Prng.create 7 in
  for _ = 1 to 50 do
    let q = Eq.create () in
    let pending = ref [] and seq = ref 0 in
    for _ = 1 to 200 do
      if !pending = [] || Rt_graph.Prng.chance g 0.6 then begin
        let t = Rt_graph.Prng.int_in g 0 20 in
        Eq.push q ~time:t !seq;
        pending := !pending @ [ (t, !seq) ];
        incr seq
      end
      else begin
        match (Eq.pop q, model_sorted !pending) with
        | Some got, expect :: rest ->
            checkb "pop matches model" true (got = expect);
            pending := rest
        | None, [] -> ()
        | _ -> Alcotest.fail "heap and model disagree on emptiness"
      end;
      checki "size matches model" (List.length !pending) (Eq.size q);
      checkb "peek matches model head" true
        (Eq.peek q
        = match model_sorted !pending with [] -> None | e :: _ -> Some e)
    done
  done

let test_heap_pop_until_boundaries () =
  let g = Rt_graph.Prng.create 99 in
  for _ = 1 to 100 do
    let n = Rt_graph.Prng.int_in g 0 40 in
    let events =
      List.init n (fun seq -> (Rt_graph.Prng.int_in g 0 12, seq))
    in
    let cut = Rt_graph.Prng.int_in g (-1) 13 in
    let q = Eq.create () in
    List.iter (fun (t, seq) -> Eq.push q ~time:t seq) events;
    let early = Eq.pop_until q cut in
    let sorted = model_sorted events in
    let expect_early = List.filter (fun (t, _) -> t <= cut) sorted in
    let expect_late = List.filter (fun (t, _) -> t > cut) sorted in
    checkb "pop_until is the <= cut prefix, in order" true
      (early = expect_early);
    checkb "remainder drains in order" true (drain q = expect_late)
  done

(* ------------------------------------------------------------------ *)
(* Arrivals                                                            *)
(* ------------------------------------------------------------------ *)

let test_arrivals_max_rate () =
  Alcotest.check (Alcotest.list Alcotest.int) "max rate" [ 0; 5; 10 ]
    (Arr.max_rate ~horizon:15 ~separation:5);
  checkb "legal" true
    (Arr.legal ~separation:5 (Arr.max_rate ~horizon:100 ~separation:5))

let test_arrivals_legality () =
  checkb "ok" true (Arr.legal ~separation:3 [ 0; 3; 7 ]);
  checkb "too close" false (Arr.legal ~separation:3 [ 0; 2 ]);
  checkb "negative" false (Arr.legal ~separation:3 [ -1; 5 ]);
  checkb "empty ok" true (Arr.legal ~separation:3 [])

let test_arrivals_random_legal () =
  let g = Rt_graph.Prng.create 17 in
  for _ = 1 to 50 do
    let a = Arr.random g ~horizon:200 ~separation:7 ~density:0.8 in
    checkb "random sequences legal" true (Arr.legal ~separation:7 a);
    let b = Arr.adversarial_phases g ~horizon:200 ~separation:7 in
    checkb "adversarial legal" true (Arr.legal ~separation:7 b)
  done

let test_arrivals_single () =
  Alcotest.check (Alcotest.list Alcotest.int) "inside" [ 5 ]
    (Arr.single ~at:5 ~horizon:10);
  Alcotest.check (Alcotest.list Alcotest.int) "outside" []
    (Arr.single ~at:15 ~horizon:10)

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

let comm2 =
  Comm_graph.create
    ~elements:[ ("u", 1, true); ("v", 1, true) ]
    ~edges:[ ("u", "v") ]

let simple_model =
  Model.make ~comm:comm2
    ~constraints:
      [
        Timing.make ~name:"per" ~graph:(Task_graph.singleton 0) ~period:4
          ~deadline:4 ~kind:Timing.Periodic;
        Timing.make ~name:"spor"
          ~graph:(Task_graph.of_chain [ 0; 1 ])
          ~period:6 ~deadline:8 ~kind:Timing.Asynchronous;
      ]

let simple_sched =
  Schedule.of_slots
    [ Schedule.Run 0; Schedule.Run 1; Schedule.Idle; Schedule.Idle ]

let test_runtime_periodic_only () =
  let r = Rtm.run simple_model simple_sched ~horizon:20 ~arrivals:[] in
  checki "five invocations" 5 (List.length r.Rtm.invocations);
  checki "no misses" 0 r.Rtm.misses;
  checkb "worst response 1" true
    (List.assoc "per" r.Rtm.worst_response = 1)

let test_runtime_async_responses () =
  let r =
    Rtm.run simple_model simple_sched ~horizon:20
      ~arrivals:[ ("spor", [ 0; 7 ]) ]
  in
  let spor_invs =
    List.filter
      (fun i -> i.Rtm.constraint_name = "spor")
      r.Rtm.invocations
  in
  checki "two invocations" 2 (List.length spor_invs);
  (* Arrival 0: u@0, v@1 -> completion 2, response 2.
     Arrival 7: u@8, v@9 -> completion 10, response 3. *)
  (match (List.nth spor_invs 0).Rtm.response with
  | Some r0 -> checki "response at 0" 2 r0
  | None -> Alcotest.fail "expected completion");
  (match (List.nth spor_invs 1).Rtm.response with
  | Some r1 -> checki "response at 7" 3 r1
  | None -> Alcotest.fail "expected completion");
  checki "no misses" 0 r.Rtm.misses

let test_runtime_detects_misses () =
  (* Tight deadline of 1 cannot be met by the chain u -> v. *)
  let m =
    Model.make ~comm:comm2
      ~constraints:
        [
          Timing.make ~name:"tight"
            ~graph:(Task_graph.of_chain [ 0; 1 ])
            ~period:5 ~deadline:1 ~kind:Timing.Asynchronous;
        ]
  in
  let r = Rtm.run m simple_sched ~horizon:20 ~arrivals:[ ("tight", [ 3 ]) ] in
  checki "one miss" 1 r.Rtm.misses

let test_runtime_rejects_bad_input () =
  checkb "unknown constraint" true
    (try
       ignore (Rtm.run simple_model simple_sched ~horizon:10 ~arrivals:[ ("zz", [ 0 ]) ]);
       false
     with Invalid_argument _ -> true);
  checkb "arrivals for periodic" true
    (try
       ignore (Rtm.run simple_model simple_sched ~horizon:10 ~arrivals:[ ("per", [ 0 ]) ]);
       false
     with Invalid_argument _ -> true);
  checkb "separation violation" true
    (try
       ignore
         (Rtm.run simple_model simple_sched ~horizon:10
            ~arrivals:[ ("spor", [ 0; 1 ]) ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Proc_sim                                                            *)
(* ------------------------------------------------------------------ *)

let per name c p d =
  Rt_process.Process.make ~name ~c ~p ~d ~kind:Rt_process.Process.Periodic_process

let spo name c p d =
  Rt_process.Process.make ~name ~c ~p ~d ~kind:Rt_process.Process.Sporadic_process

let test_proc_sim_edf_meets () =
  let r = Psim.simulate Psim.Edf [ per "a" 1 2 2; per "b" 2 4 4 ] ~horizon:8 in
  checki "no misses at U=1" 0 r.Psim.misses;
  checki "no idle at U=1" 0 r.Psim.idle

let test_proc_sim_overload_misses () =
  let r = Psim.simulate Psim.Edf [ per "a" 3 4 4; per "b" 2 4 4 ] ~horizon:8 in
  checkb "misses under overload" true (r.Psim.misses > 0)

let test_proc_sim_rm_priority_inversion () =
  (* RM fails where EDF succeeds: classic U=1 pair. *)
  let procs = [ per "a" 2 4 4; per "b" 4 8 8 ] in
  let edf = Psim.simulate Psim.Edf procs ~horizon:8 in
  let rm =
    Psim.simulate (Psim.Fixed Rt_process.Fixed_priority.Rate_monotonic) procs
      ~horizon:8
  in
  checki "EDF fine" 0 edf.Psim.misses;
  checki "RM fine here too" 0 rm.Psim.misses;
  (* A set schedulable by EDF but not RM: 1/3 + 2/4 + ... use
     c/p = (1,3),(1,4),(2,5): U = 0.983 > RM bound and indeed RM
     misses. *)
  let hard = [ per "x" 1 3 3; per "y" 1 4 4; per "z" 2 5 5 ] in
  let edf2 = Psim.schedulable_by_simulation Psim.Edf hard in
  let rm2 =
    Psim.schedulable_by_simulation
      (Psim.Fixed Rt_process.Fixed_priority.Rate_monotonic)
      hard
  in
  checkb "EDF schedules it" true edf2;
  checkb "RM does not" false rm2

let test_proc_sim_llf () =
  let procs = [ per "a" 1 2 2; per "b" 2 4 4 ] in
  checkb "LLF handles U=1" true (Psim.schedulable_by_simulation Psim.Llf procs)

let test_proc_sim_sporadic_arrivals () =
  let procs = [ spo "s" 2 5 5 ] in
  let r =
    Psim.simulate ~arrivals:[ ("s", [ 1; 9 ]) ] Psim.Edf procs ~horizon:15
  in
  checki "two jobs" 2 (List.length r.Psim.jobs);
  checki "no misses" 0 r.Psim.misses;
  let j0 = List.nth r.Psim.jobs 0 in
  checkb "released at 1" true (j0.Psim.release = 1);
  checkb "finished by 3" true (j0.Psim.finish = Some 3)

let test_proc_sim_kernelized () =
  (* q = 1 is plain EDF. *)
  let procs = [ per "a" 1 2 2; per "b" 2 4 4 ] in
  let edf = Psim.simulate Psim.Edf procs ~horizon:8 in
  let k1 = Psim.simulate (Psim.Kernelized 1) procs ~horizon:8 in
  checki "q=1 equals EDF misses" edf.Psim.misses k1.Psim.misses;
  (* A large quantum delays urgent work: a long job grabs the processor
     at a boundary and a tight job released just after must wait out
     the quantum. *)
  let tight = per "tight" 1 8 2 in
  let long = per "long" 6 16 16 in
  let arrivals_free =
    Psim.simulate ~arrivals:[] Psim.Edf [ tight; long ] ~horizon:16
  in
  checki "EDF meets both" 0 arrivals_free.Psim.misses;
  let spor_tight =
    Rt_process.Process.make ~name:"tight" ~c:1 ~p:8 ~d:2
      ~kind:Rt_process.Process.Sporadic_process
  in
  let kern =
    Psim.simulate
      ~arrivals:[ ("tight", [ 1; 9 ]) ]
      (Psim.Kernelized 4) [ spor_tight; long ] ~horizon:16
  in
  (* tight released at 1 with d=2 must finish by 3, but long holds the
     processor until the boundary at 4. *)
  checkb "quantum blocking causes the miss" true (kern.Psim.misses > 0);
  let edf2 =
    Psim.simulate
      ~arrivals:[ ("tight", [ 1; 9 ]) ]
      Psim.Edf [ spor_tight; long ] ~horizon:16
  in
  checki "preemptive EDF meets it" 0 edf2.Psim.misses;
  checkb "bad quantum rejected" true
    (try
       ignore (Psim.simulate (Psim.Kernelized 0) procs ~horizon:4);
       false
     with Invalid_argument _ -> true)

let test_proc_sim_preemption_count () =
  (* b (long, loose) is preempted by a (short, tight). *)
  let procs = [ per "a" 1 3 3; per "b" 4 9 9 ] in
  let r = Psim.simulate Psim.Edf procs ~horizon:9 in
  checkb "preemptions observed" true (r.Psim.preemptions > 0);
  checki "no misses" 0 r.Psim.misses

(* ------------------------------------------------------------------ *)
(* Data (value-carrying simulation)                                    *)
(* ------------------------------------------------------------------ *)

let data_comm =
  Comm_graph.create
    ~elements:[ ("src", 1, true); ("dbl", 1, true); ("out", 1, true) ]
    ~edges:[ ("src", "dbl"); ("dbl", "out") ]

let data_model =
  Model.make ~comm:data_comm
    ~constraints:
      [
        Timing.make ~name:"flow"
          ~graph:(Task_graph.of_chain [ 0; 1; 2 ])
          ~period:3 ~deadline:3 ~kind:Timing.Periodic;
      ]

let data_sched =
  Schedule.of_slots [ Schedule.Run 0; Schedule.Run 1; Schedule.Run 2 ]

let test_data_flow_values () =
  let config =
    {
      Data.interps =
        [
          ("src", fun ~now _ -> float_of_int now);
          ("dbl", fun ~now:_ inputs -> 2.0 *. inputs.(0));
        ];
      assertions = [];
    }
  in
  let r = Data.run data_model data_sched config ~steps:9 in
  (* src completes at 1, 4, 7 emitting 1, 4, 7; dbl doubles the latest
     value; out is a sink summing its input. *)
  checki "three outputs" 3 (List.length r.Data.outputs);
  let _, _, v_last = List.nth r.Data.outputs 2 in
  (* Third round: src completes at time 7 emitting 7.0, dbl doubles it
     at time 8, out publishes 14.0 at time 9. *)
  checkb "last output is 2 * src@7" true (v_last = 14.0);
  checkb "transmissions recorded" true (List.length r.Data.transmissions = 6)

let test_data_assertions () =
  let config =
    {
      Data.interps = [ ("src", fun ~now _ -> float_of_int now) ];
      assertions = [ ("src", "dbl", fun v -> v < 5.0) ];
    }
  in
  let r = Data.run data_model data_sched config ~steps:9 in
  (* src values 1, 4, 7: the third violates v < 5. *)
  checki "one violation" 1 (List.length r.Data.violations);
  let viol = List.hd r.Data.violations in
  checkb "violating value" true (viol.Data.transmission.Data.value = 7.0)

let test_data_default_interp_sums () =
  let config = { Data.interps = []; assertions = [] } in
  let r = Data.run data_model data_sched config ~steps:3 in
  (* All defaults: src emits 0 (no inputs), dbl sums -> 0, out -> 0. *)
  checkb "edge values are zero" true
    (List.for_all (fun (_, v) -> v = 0.0) r.Data.final_edge_values)

let test_data_rejects_unknown () =
  let config = { Data.interps = [ ("zz", fun ~now:_ _ -> 0.0) ]; assertions = [] } in
  checkb "unknown element" true
    (try
       ignore (Data.run data_model data_sched config ~steps:3);
       false
     with Invalid_argument _ -> true);
  let config2 =
    { Data.interps = []; assertions = [ ("out", "src", fun _ -> true) ] }
  in
  checkb "unknown edge" true
    (try
       ignore (Data.run data_model data_sched config2 ~steps:3);
       false
     with Invalid_argument _ -> true)

let test_data_multi_slot_elements () =
  (* An element of weight 2 only fires after both slots. *)
  let comm =
    Comm_graph.create
      ~elements:[ ("a", 2, true); ("b", 1, true) ]
      ~edges:[ ("a", "b") ]
  in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"c"
            ~graph:(Task_graph.of_chain [ 0; 1 ])
            ~period:4 ~deadline:4 ~kind:Timing.Periodic;
        ]
  in
  let sched =
    Schedule.of_slots
      [ Schedule.Run 0; Schedule.Run 0; Schedule.Run 1; Schedule.Idle ]
  in
  let config =
    { Data.interps = [ ("a", fun ~now _ -> float_of_int now) ]; assertions = [] }
  in
  let r = Data.run m sched config ~steps:4 in
  checki "one transmission" 1 (List.length r.Data.transmissions);
  let tr = List.hd r.Data.transmissions in
  checkb "fires at completion of second slot" true (tr.Data.time = 2)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let test_fault_injectors () =
  let base ~now _ = float_of_int now in
  let w = { Rt_sim.Fault.from = 10; until = 20 } in
  let stuck = Rt_sim.Fault.stuck_at w 99.0 base in
  checkb "stuck inside" true (stuck ~now:15 [||] = 99.0);
  checkb "normal outside" true (stuck ~now:5 [||] = 5.0);
  checkb "normal after" true (stuck ~now:25 [||] = 25.0);
  let biased = Rt_sim.Fault.offset_by w 100.0 base in
  checkb "bias inside" true (biased ~now:12 [||] = 112.0);
  checkb "no bias outside" true (biased ~now:2 [||] = 2.0);
  let sp = Rt_sim.Fault.spike ~at:7 (-1.0) base in
  checkb "spike at" true (sp ~now:7 [||] = -1.0);
  checkb "spike only at" true (sp ~now:8 [||] = 8.0);
  let frozen = Rt_sim.Fault.dropout w base in
  checkb "before window tracks" true (frozen ~now:9 [||] = 9.0);
  checkb "inside window frozen at last value" true (frozen ~now:15 [||] = 9.0);
  checkb "after window resumes" true (frozen ~now:21 [||] = 21.0);
  let combo =
    Rt_sim.Fault.chain
      [ Rt_sim.Fault.offset_by w 1.0; Rt_sim.Fault.stuck_at w 42.0 ]
      base
  in
  (* chain applies left to right: offset first, then stuck overrides. *)
  checkb "chain order" true (combo ~now:12 [||] = 42.0)

let test_spike_between_completions () =
  (* Regression: [spike ~at] must hit the first completion at or after
     [at] — once — even when no completion lands exactly on [at]. *)
  let base ~now _ = float_of_int now in
  let sp = Rt_sim.Fault.spike ~at:6 (-1.0) base in
  checkb "before at unaffected" true (sp ~now:5 [||] = 5.0);
  checkb "first completion past at is hit" true (sp ~now:7 [||] = -1.0);
  checkb "second completion at same instant unaffected" true
    (sp ~now:7 [||] = 7.0);
  checkb "later completions unaffected" true (sp ~now:9 [||] = 9.0);
  (* A fresh injector is an independent glitch. *)
  let sp2 = Rt_sim.Fault.spike ~at:0 42.0 base in
  checkb "fresh injector fires independently" true (sp2 ~now:3 [||] = 42.0)

let test_fault_detected_by_assertions () =
  (* Inject a stuck-at fault into the source; the edge assertion must
     flag exactly the in-window transmissions. *)
  let config =
    {
      Data.interps =
        [ ("src", Rt_sim.Fault.stuck_at { from = 3; until = 7 } 50.0
                    (fun ~now _ -> float_of_int now) ) ];
      assertions = [ ("src", "dbl", fun v -> v < 20.0) ];
    }
  in
  let r = Data.run data_model data_sched config ~steps:12 in
  (* src completes at 1, 4, 7, 10: values 1, 50 (faulty), 7, 10. *)
  checki "one violation" 1 (List.length r.Data.violations);
  checkb "violation at t=4" true
    ((List.hd r.Data.violations).Data.transmission.Data.time = 4)

let () =
  Alcotest.run "rt_sim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "pop_until/clear" `Quick test_heap_pop_until;
          Alcotest.test_case "growth" `Quick test_heap_growth;
          Alcotest.test_case "random vs model" `Quick test_heap_matches_model;
          Alcotest.test_case "interleaved push/pop" `Quick
            test_heap_interleaved_ops;
          Alcotest.test_case "pop_until boundaries" `Quick
            test_heap_pop_until_boundaries;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "max rate" `Quick test_arrivals_max_rate;
          Alcotest.test_case "legality" `Quick test_arrivals_legality;
          Alcotest.test_case "random legal" `Quick test_arrivals_random_legal;
          Alcotest.test_case "single" `Quick test_arrivals_single;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "periodic only" `Quick test_runtime_periodic_only;
          Alcotest.test_case "async responses" `Quick
            test_runtime_async_responses;
          Alcotest.test_case "detects misses" `Quick
            test_runtime_detects_misses;
          Alcotest.test_case "rejects bad input" `Quick
            test_runtime_rejects_bad_input;
        ] );
      ( "proc_sim",
        [
          Alcotest.test_case "EDF meets" `Quick test_proc_sim_edf_meets;
          Alcotest.test_case "overload misses" `Quick
            test_proc_sim_overload_misses;
          Alcotest.test_case "EDF vs RM" `Quick
            test_proc_sim_rm_priority_inversion;
          Alcotest.test_case "LLF" `Quick test_proc_sim_llf;
          Alcotest.test_case "sporadic arrivals" `Quick
            test_proc_sim_sporadic_arrivals;
          Alcotest.test_case "preemptions" `Quick
            test_proc_sim_preemption_count;
          Alcotest.test_case "kernelized monitor" `Quick
            test_proc_sim_kernelized;
        ] );
      ( "fault",
        [
          Alcotest.test_case "injectors" `Quick test_fault_injectors;
          Alcotest.test_case "spike between completions" `Quick
            test_spike_between_completions;
          Alcotest.test_case "detected by assertions" `Quick
            test_fault_detected_by_assertions;
        ] );
      ( "data",
        [
          Alcotest.test_case "flow values" `Quick test_data_flow_values;
          Alcotest.test_case "assertions" `Quick test_data_assertions;
          Alcotest.test_case "default interp" `Quick
            test_data_default_interp_sums;
          Alcotest.test_case "rejects unknown" `Quick test_data_rejects_unknown;
          Alcotest.test_case "multi-slot elements" `Quick
            test_data_multi_slot_elements;
        ] );
    ]
