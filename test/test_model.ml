(* Tests for the model layer: Element, Comm_graph, Task_graph, Timing,
   Model — the formal objects of the paper's Section "A Graph-Based
   Model for the Hard-Real-Time Environment". *)

open Rt_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let simple_comm () =
  Comm_graph.create
    ~elements:[ ("a", 1, true); ("b", 2, true); ("c", 3, false) ]
    ~edges:[ ("a", "b"); ("b", "c"); ("c", "a") ]

(* ------------------------------------------------------------------ *)
(* Element                                                             *)
(* ------------------------------------------------------------------ *)

let test_element_make () =
  let e = Element.make ~id:0 ~name:"f" ~weight:3 ~pipelinable:true in
  checki "weight" 3 e.Element.weight;
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Element.make: negative weight") (fun () ->
      ignore (Element.make ~id:0 ~name:"f" ~weight:(-1) ~pipelinable:true));
  Alcotest.check_raises "empty name"
    (Invalid_argument "Element.make: empty name") (fun () ->
      ignore (Element.make ~id:0 ~name:"" ~weight:1 ~pipelinable:true))

let test_element_pp () =
  let e = Element.make ~id:0 ~name:"f" ~weight:3 ~pipelinable:false in
  Alcotest.check Alcotest.string "pp atomic" "f/3~"
    (Format.asprintf "%a" Element.pp e)

(* ------------------------------------------------------------------ *)
(* Comm_graph                                                          *)
(* ------------------------------------------------------------------ *)

let test_comm_lookup () =
  let g = simple_comm () in
  checki "n_elements" 3 (Comm_graph.n_elements g);
  checki "id by name" 1 (Comm_graph.id_of_name g "b");
  checki "weight" 2 (Comm_graph.weight g 1);
  checkb "pipelinable" true (Comm_graph.pipelinable g 0);
  checkb "atomic" false (Comm_graph.pipelinable g 2);
  checkb "find_opt hit" true (Comm_graph.find_opt g "c" <> None);
  checkb "find_opt miss" true (Comm_graph.find_opt g "zz" = None);
  checki "total_weight" 6 (Comm_graph.total_weight g)

let test_comm_edges () =
  let g = simple_comm () in
  checkb "edge a->b" true (Comm_graph.has_edge g 0 1);
  checkb "no edge b->a" false (Comm_graph.has_edge g 1 0);
  (* Communication graphs may be cyclic (the paper's feedback loop). *)
  checkb "cyclic allowed" false
    (Rt_graph.Digraph.is_acyclic (Comm_graph.graph g))

let test_comm_duplicate_name () =
  Alcotest.check_raises "duplicate element"
    (Invalid_argument "Comm_graph: duplicate element name a") (fun () ->
      ignore
        (Comm_graph.create
           ~elements:[ ("a", 1, true); ("a", 2, true) ]
           ~edges:[]))

let test_comm_unknown_edge () =
  Alcotest.check_raises "edge to unknown element"
    (Invalid_argument "Comm_graph: edge names unknown element z") (fun () ->
      ignore
        (Comm_graph.create ~elements:[ ("a", 1, true) ] ~edges:[ ("a", "z") ]))

let test_comm_with_elements () =
  let g = simple_comm () in
  let g' = Comm_graph.with_elements g [ ("d", 4, true) ] [ ("c", "d") ] in
  checki "extended size" 4 (Comm_graph.n_elements g');
  checkb "old edge kept" true
    (Comm_graph.has_edge g'
       (Comm_graph.id_of_name g' "a")
       (Comm_graph.id_of_name g' "b"));
  checkb "new edge present" true
    (Comm_graph.has_edge g'
       (Comm_graph.id_of_name g' "c")
       (Comm_graph.id_of_name g' "d"))

let test_all_pipelinable () =
  checkb "mixed" false (Comm_graph.all_pipelinable (simple_comm ()));
  let g = Comm_graph.create ~elements:[ ("a", 1, true) ] ~edges:[] in
  checkb "all" true (Comm_graph.all_pipelinable g)

(* ------------------------------------------------------------------ *)
(* Task_graph                                                          *)
(* ------------------------------------------------------------------ *)

let test_task_graph_chain () =
  let tg = Task_graph.of_chain [ 0; 1; 2 ] in
  checki "size" 3 (Task_graph.size tg);
  checkb "is chain" true (Task_graph.is_chain tg);
  Alcotest.check (Alcotest.list Alcotest.int) "straight line" [ 0; 1; 2 ]
    (Task_graph.straight_line tg);
  Alcotest.check (Alcotest.list Alcotest.int) "elements used" [ 0; 1; 2 ]
    (Task_graph.elements_used tg)

let test_task_graph_cycle_rejected () =
  Alcotest.check_raises "cyclic precedence"
    (Invalid_argument "Task_graph.create: precedence relation is cyclic")
    (fun () ->
      ignore (Task_graph.create ~nodes:[| 0; 1 |] ~edges:[ (0, 1); (1, 0) ]))

let test_task_graph_duplicates () =
  (* Two nodes may map to the same element. *)
  let tg = Task_graph.create ~nodes:[| 0; 0; 1 |] ~edges:[ (0, 2); (2, 1) ] in
  checki "occurrences of 0" 2 (Task_graph.occurrences tg 0);
  checki "occurrences of 1" 1 (Task_graph.occurrences tg 1);
  Alcotest.check (Alcotest.list Alcotest.int) "dedup elements" [ 0; 1 ]
    (Task_graph.elements_used tg)

let test_computation_time_and_critical_path () =
  let g = simple_comm () in
  let tg = Task_graph.of_chain [ 0; 1; 2 ] in
  checki "computation time is weight sum" 6 (Task_graph.computation_time g tg);
  checki "chain critical path = total" 6 (Task_graph.critical_path g tg);
  (* Fork: 0 -> {1, 2}; critical path takes the heavier branch. *)
  let fj = Task_graph.create ~nodes:[| 0; 1; 2 |] ~edges:[ (0, 1); (0, 2) ] in
  checki "fork computation time" 6 (Task_graph.computation_time g fj);
  checki "fork critical path" 4 (Task_graph.critical_path g fj)

let test_compatibility () =
  let g = simple_comm () in
  checkb "chain a->b->c compatible" true
    (Task_graph.compatible g (Task_graph.of_chain [ 0; 1; 2 ]) = Ok ());
  (match Task_graph.compatible g (Task_graph.of_chain [ 1; 0 ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "b->a has no communication edge");
  match Task_graph.compatible g (Task_graph.singleton 7) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown element must be rejected"

let test_disjoint_union () =
  let a = Task_graph.of_chain [ 0; 1 ] in
  let b = Task_graph.of_chain [ 2 ] in
  let u, ma, mb = Task_graph.disjoint_union a b in
  checki "union size" 3 (Task_graph.size u);
  checki "a's first node" 0 ma.(0);
  checki "b's node shifted" 2 mb.(0);
  checki "edges preserved" 1 (List.length (Task_graph.edges u))

let test_map_elements () =
  let tg = Task_graph.of_chain [ 0; 1 ] in
  let tg' = Task_graph.map_elements tg ~f:(fun e -> e + 10) in
  checki "mapped element" 10 (Task_graph.element_of_node tg' 0);
  checki "edges unchanged" 1 (List.length (Task_graph.edges tg'))

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

let test_timing_validation () =
  let tg = Task_graph.singleton 0 in
  Alcotest.check_raises "zero period"
    (Invalid_argument "Timing.make: period must be positive") (fun () ->
      ignore
        (Timing.make ~name:"c" ~graph:tg ~period:0 ~deadline:1
           ~kind:Timing.Periodic));
  Alcotest.check_raises "zero deadline"
    (Invalid_argument "Timing.make: deadline must be positive") (fun () ->
      ignore
        (Timing.make ~name:"c" ~graph:tg ~period:1 ~deadline:0
           ~kind:Timing.Periodic))

let test_timing_offset () =
  let tg = Task_graph.singleton 0 in
  let c =
    Timing.make ~name:"c" ~graph:tg ~period:10 ~deadline:5 ~kind:Timing.Periodic
  in
  checki "default offset" 0 c.Timing.offset;
  let c' = Timing.with_offset c 3 in
  checki "offset applied" 3 c'.Timing.offset;
  checkb "original untouched" true (c.Timing.offset = 0);
  Alcotest.check_raises "offset >= period"
    (Invalid_argument "Timing.with_offset: offset must lie in [0, period)")
    (fun () -> ignore (Timing.with_offset c 10));
  let a =
    Timing.make ~name:"a" ~graph:tg ~period:10 ~deadline:5
      ~kind:Timing.Asynchronous
  in
  Alcotest.check_raises "async offsets rejected"
    (Invalid_argument "Timing.with_offset: offsets apply to periodic constraints")
    (fun () -> ignore (Timing.with_offset a 3))

let test_timing_metrics () =
  let g = simple_comm () in
  let c =
    Timing.make ~name:"c"
      ~graph:(Task_graph.of_chain [ 0; 1 ])
      ~period:10 ~deadline:5 ~kind:Timing.Asynchronous
  in
  checki "computation time" 3 (Timing.computation_time g c);
  Alcotest.check (Alcotest.float 1e-9) "utilization" 0.3
    (Timing.utilization g c);
  Alcotest.check (Alcotest.float 1e-9) "density" 0.6 (Timing.density g c);
  checkb "async" true (Timing.is_asynchronous c);
  checkb "not periodic" false (Timing.is_periodic c)

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

let example = Rt_workload.Suite.control_system Rt_workload.Suite.default_params

let test_model_partitions () =
  checki "two periodic" 2 (List.length (Model.periodic example));
  checki "one asynchronous" 1 (List.length (Model.asynchronous example));
  checkb "find works" true ((Model.find example "pz").Timing.name = "pz");
  Alcotest.check_raises "find unknown" Not_found (fun () ->
      ignore (Model.find example "nope"))

let test_model_validation_errors () =
  let comm = Comm_graph.create ~elements:[ ("a", 1, true) ] ~edges:[] in
  let dup =
    [
      Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:2
        ~deadline:2 ~kind:Timing.Periodic;
      Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:3
        ~deadline:3 ~kind:Timing.Periodic;
    ]
  in
  (match Model.validate ~comm ~constraints:dup with
  | Error [ msg ] ->
      checkb "duplicate name reported" true
        (msg = "duplicate constraint name c")
  | _ -> Alcotest.fail "expected exactly one error");
  let incompatible =
    [
      Timing.make ~name:"c"
        ~graph:(Task_graph.of_chain [ 0; 0 ])
        ~period:2 ~deadline:2 ~kind:Timing.Periodic;
    ]
  in
  match Model.validate ~comm ~constraints:incompatible with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "self-chain without comm edge must fail"

let test_model_rejects_weight_zero () =
  let comm = Comm_graph.create ~elements:[ ("a", 0, true) ] ~edges:[] in
  match
    Model.validate ~comm
      ~constraints:
        [
          Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:2
            ~deadline:2 ~kind:Timing.Periodic;
        ]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "weight-0 element in a task graph must be rejected"

let test_model_metrics () =
  (* px: (1+2+1)/10 = 0.4, py: 4/20 = 0.2, pz: 3/50 = 0.06 *)
  Alcotest.check (Alcotest.float 1e-9) "utilization" 0.66
    (Model.utilization example);
  checki "hyperperiod" 20 (Model.hyperperiod example)

let test_model_shared_elements () =
  let shared = Model.elements_shared example in
  let names =
    List.map
      (fun (e, users) ->
        ((Comm_graph.element example.Model.comm e).Element.name, users))
      shared
  in
  checkb "f_s shared by all three" true
    (List.mem_assoc "f_s" names
    && List.assoc "f_s" names = [ "px"; "py"; "pz" ]);
  checkb "f_k shared by two" true
    (List.mem_assoc "f_k" names && List.assoc "f_k" names = [ "px"; "py" ]);
  checkb "f_x not shared" false (List.mem_assoc "f_x" names)

let test_theorem3_premises () =
  (* The default example violates (i): 4/10 + 4/20 + 3/15 = 0.8 > 0.5 *)
  checkb "default example violates premises" false
    (match Model.theorem3_premises example with Ok () -> true | _ -> false);
  let relaxed =
    Rt_workload.Suite.control_system
      {
        Rt_workload.Suite.default_params with
        p_x = 40;
        d_x = 40;
        p_y = 80;
        d_y = 80;
        d_z = 60;
      }
  in
  checkb "relaxed example satisfies premises" true
    (match Model.theorem3_premises relaxed with Ok () -> true | _ -> false);
  let atomic =
    Rt_workload.Suite.control_system
      {
        Rt_workload.Suite.default_params with
        p_x = 40;
        d_x = 40;
        p_y = 80;
        d_y = 80;
        d_z = 60;
        pipelinable = false;
      }
  in
  match Model.theorem3_premises atomic with
  | Error msgs ->
      checkb "premise (iii) reported" true
        (List.exists
           (fun m -> String.length m >= 5 && String.sub m 0 5 = "(iii)")
           msgs)
  | Ok () -> Alcotest.fail "atomic elements must violate premise (iii)"

let () =
  Alcotest.run "rt_core-model"
    [
      ( "element",
        [
          Alcotest.test_case "make" `Quick test_element_make;
          Alcotest.test_case "pp" `Quick test_element_pp;
        ] );
      ( "comm_graph",
        [
          Alcotest.test_case "lookup" `Quick test_comm_lookup;
          Alcotest.test_case "edges" `Quick test_comm_edges;
          Alcotest.test_case "duplicate name" `Quick test_comm_duplicate_name;
          Alcotest.test_case "unknown edge" `Quick test_comm_unknown_edge;
          Alcotest.test_case "with_elements" `Quick test_comm_with_elements;
          Alcotest.test_case "all_pipelinable" `Quick test_all_pipelinable;
        ] );
      ( "task_graph",
        [
          Alcotest.test_case "chain" `Quick test_task_graph_chain;
          Alcotest.test_case "cycle rejected" `Quick
            test_task_graph_cycle_rejected;
          Alcotest.test_case "duplicate elements" `Quick
            test_task_graph_duplicates;
          Alcotest.test_case "computation time / critical path" `Quick
            test_computation_time_and_critical_path;
          Alcotest.test_case "compatibility" `Quick test_compatibility;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "map elements" `Quick test_map_elements;
        ] );
      ( "timing",
        [
          Alcotest.test_case "validation" `Quick test_timing_validation;
          Alcotest.test_case "offset" `Quick test_timing_offset;
          Alcotest.test_case "metrics" `Quick test_timing_metrics;
        ] );
      ( "model",
        [
          Alcotest.test_case "partitions" `Quick test_model_partitions;
          Alcotest.test_case "validation errors" `Quick
            test_model_validation_errors;
          Alcotest.test_case "weight-0 rejected" `Quick
            test_model_rejects_weight_zero;
          Alcotest.test_case "metrics" `Quick test_model_metrics;
          Alcotest.test_case "shared elements" `Quick
            test_model_shared_elements;
          Alcotest.test_case "theorem-3 premises" `Quick
            test_theorem3_premises;
        ] );
    ]
