(* Engine-equivalence properties for the state-space game engine.

   The game engine (Game.solve, the default behind Exact.enumerate /
   enumerate_atomic / solve_single_ops) and the original bounded DFS
   are independent deciders of the same question, so on random models
   they must never contradict each other:

   - `Dfs Feasible  => `Game Feasible (the game search is complete);
   - `Game Infeasible => `Dfs must not find a schedule at any bound;
   - every `Game Feasible schedule must pass the latency analyser run
     as an oracle (per-constraint meets_asynchronous and the uncached
     whole-model verify), because a game cycle is only a real schedule
     if the residue/budget bookkeeping is sound.

   CI greps for these test names; renaming them silently disables the
   gate (.github/workflows/ci.yml). *)

open Rt_core

let checkb = Alcotest.check Alcotest.bool

let oracle_ok m sched =
  List.for_all
    (fun c -> Latency.meets_asynchronous m.Model.comm sched c)
    (Model.asynchronous m)
  && Latency.all_ok (Latency.verify ~cached:false m sched)

(* Compatibility of a definitive game verdict with a bounded DFS one.
   [Unknown] from the game engine would mean the state budget bound —
   models here are sized so it must not bind. *)
let check_agreement ~what m game dfs =
  match (game, dfs) with
  | Exact.Feasible sched, (Exact.Feasible _ | Exact.Unknown _) ->
      checkb (what ^ ": game schedule passes the oracle") true
        (oracle_ok m sched)
  | Exact.Infeasible, Exact.Unknown _ -> ()
  | Exact.Infeasible, Exact.Infeasible -> ()
  | Exact.Infeasible, Exact.Feasible s ->
      Alcotest.failf "%s: game says infeasible but DFS found %s" what
        (Format.asprintf "%a" Schedule.pp s)
  | Exact.Feasible _, Exact.Infeasible ->
      Alcotest.failf "%s: bounded DFS must never report Infeasible" what
  | Exact.Unknown msg, _ ->
      Alcotest.failf "%s: game state budget must not bind here (%s)" what msg
  | Exact.Timeout msg, _ | _, Exact.Timeout msg ->
      Alcotest.failf "%s: no budget was supplied (%s)" what msg

let test_game_eq_dfs_unit () =
  let g = Rt_graph.Prng.create 1009 in
  for i = 1 to 30 do
    let m =
      Rt_workload.Model_gen.unit_chain_model g
        ~n_constraints:(1 + Rt_graph.Prng.int g 3)
        ~n_elements:(3 + Rt_graph.Prng.int g 2)
        ~max_deadline:7
    in
    let game = (Exact.enumerate ~engine:`Game m).Exact.outcome in
    let dfs = (Exact.enumerate ~engine:`Dfs ~max_len:7 m).Exact.outcome in
    check_agreement ~what:(Printf.sprintf "unit chains #%d" i) m game dfs
  done

let test_game_eq_dfs_single_ops () =
  let g = Rt_graph.Prng.create 2003 in
  for i = 1 to 30 do
    let m =
      Rt_workload.Model_gen.single_op_model ~max_deadline:9 g
        ~n_constraints:(1 + Rt_graph.Prng.int g 3)
        ~max_weight:1
        ~target_ratio_sum:(0.3 +. Rt_graph.Prng.float g 1.0)
    in
    let game = (Exact.enumerate ~engine:`Game m).Exact.outcome in
    let dfs = (Exact.enumerate ~engine:`Dfs ~max_len:8 m).Exact.outcome in
    check_agreement ~what:(Printf.sprintf "unit single ops #%d" i) m game dfs
  done

let test_game_eq_dfs_atomic () =
  let g = Rt_graph.Prng.create 3001 in
  for i = 1 to 25 do
    let m =
      Rt_workload.Model_gen.single_op_model ~max_deadline:9 g
        ~n_constraints:2 ~max_weight:3
        ~target_ratio_sum:(0.4 +. Rt_graph.Prng.float g 0.8)
    in
    let game = (Exact.enumerate_atomic ~engine:`Game m).Exact.outcome in
    let dfs =
      (Exact.enumerate_atomic ~engine:`Dfs ~max_len:10 m).Exact.outcome
    in
    check_agreement ~what:(Printf.sprintf "weighted singles #%d" i) m game dfs
  done

let test_game_eq_dfs_atomic_graphs () =
  (* Weighted multi-operation task graphs: the residue game with
     dominance disabled, against the atomic-block DFS. *)
  let g = Rt_graph.Prng.create 4007 in
  for i = 1 to 15 do
    let m =
      Rt_workload.Model_gen.theorem3_model g
        ~n_constraints:(1 + Rt_graph.Prng.int g 2)
        ~max_weight:2
    in
    let game =
      (Exact.enumerate_atomic ~engine:`Game ~max_states:200_000 m)
        .Exact.outcome
    in
    let dfs =
      (Exact.enumerate_atomic ~engine:`Dfs ~max_len:8 m).Exact.outcome
    in
    match (game, dfs) with
    | Exact.Unknown _, _ ->
        (* Theorem-3 deadlines can be large; the state budget may bind.
           That is a legal answer, just not an informative sample. *)
        ()
    | _ ->
        check_agreement ~what:(Printf.sprintf "atomic graphs #%d" i) m game dfs
  done

let test_game_pool_equals_sequential () =
  (* The pooled game must return the bit-identical schedule: branches
     share only path-independent dead-state facts, so the lowest-index
     cycle is invariant.  (CI greps this name; see also test_par.ml.) *)
  let g = Rt_graph.Prng.create 5003 in
  Rt_par.Pool.with_pool ~jobs:4 (fun p ->
      for _ = 1 to 12 do
        let m =
          Rt_workload.Model_gen.unit_chain_model g ~n_constraints:2
            ~n_elements:3 ~max_deadline:6
        in
        let seq = (Exact.enumerate ~engine:`Game m).Exact.outcome in
        let par = (Exact.enumerate ~engine:`Game ~pool:p m).Exact.outcome in
        match (seq, par) with
        | Exact.Feasible a, Exact.Feasible b ->
            checkb "same schedule" true (Schedule.equal a b)
        | Exact.Infeasible, Exact.Infeasible -> ()
        | _ -> Alcotest.fail "pooled game diverged from sequential"
      done;
      for _ = 1 to 12 do
        let m =
          Rt_workload.Model_gen.single_op_model ~max_deadline:10 g
            ~n_constraints:3 ~max_weight:3
            ~target_ratio_sum:(0.4 +. Rt_graph.Prng.float g 0.8)
        in
        let seq = (Exact.solve_single_ops m).Exact.outcome in
        let par = (Exact.solve_single_ops ~pool:p m).Exact.outcome in
        match (seq, par) with
        | Exact.Feasible a, Exact.Feasible b ->
            checkb "same schedule" true (Schedule.equal a b)
        | Exact.Infeasible, Exact.Infeasible -> ()
        | _ -> Alcotest.fail "pooled single-op game diverged from sequential"
      done)

let test_game_budget_yields_unknown () =
  let g = Rt_graph.Prng.create 6011 in
  let m =
    Rt_workload.Model_gen.unit_chain_model g ~n_constraints:3 ~n_elements:4
      ~max_deadline:8
  in
  match (Exact.enumerate ~engine:`Game ~max_states:4 m).Exact.outcome with
  | Exact.Unknown _ -> ()
  | Exact.Feasible _ -> Alcotest.fail "4 states cannot suffice"
  | Exact.Infeasible -> Alcotest.fail "must not claim infeasible when truncated"
  | Exact.Timeout _ -> Alcotest.fail "no budget was supplied"

(* ------------------------------------------------------------------ *)
(* Packed vs reference vs DFS (QCheck)                                 *)
(* ------------------------------------------------------------------ *)

(* The packed engine must be indistinguishable from the frozen PR-4
   reference engine on random models: identical verdicts always, and —
   with the small-model bypass disabled so the engine's own first-found
   cycle is returned — bit-identical schedules, sequentially and under
   a 4-lane pool.  The bounded DFS rides along as an independent
   oracle.  The batched latency verifier must answer exactly as the
   per-constraint one on every schedule we see. *)
let qcheck_packed_eq_reference =
  let gen_seed = QCheck.make QCheck.Gen.(int_bound 10_000) in
  QCheck.Test.make ~count:30
    ~name:"packed = reference = dfs on random models (jobs 1 and 4)" gen_seed
    (fun seed ->
      let m =
        let g = Rt_graph.Prng.create (1 + seed) in
        if seed mod 2 = 0 then
          Rt_workload.Model_gen.unit_chain_model g
            ~n_constraints:(1 + (seed mod 3))
            ~n_elements:(3 + (seed mod 2))
            ~max_deadline:7
        else
          Rt_workload.Model_gen.single_op_model g ~max_deadline:9
            ~n_constraints:(1 + (seed mod 3))
            ~max_weight:2
            ~target_ratio_sum:(0.4 +. (float_of_int (seed mod 5) /. 10.))
      in
      let solve ?pool ~impl ~bypass () =
        Game.solve ?pool ~impl ~bypass ~max_states:200_000 ~granularity:`Atomic
          m
      in
      let packed = solve ~impl:`Packed ~bypass:false () in
      let reference = solve ~impl:`Reference ~bypass:false () in
      let meets_agree sched =
        Latency.meets_all_asynchronous m.Model.comm sched
          (Model.asynchronous m)
        = List.for_all
            (fun c -> Latency.meets_asynchronous m.Model.comm sched c)
            (Model.asynchronous m)
      in
      (match (packed.outcome, reference.outcome) with
      | Exact.Feasible a, Exact.Feasible b ->
          if not (Schedule.equal a b) then
            QCheck.Test.fail_reportf "packed schedule differs from reference";
          if not (oracle_ok m a) then
            QCheck.Test.fail_reportf "packed schedule fails the oracle";
          if not (meets_agree a) then
            QCheck.Test.fail_reportf "batched verifier diverged (feasible)"
      | Exact.Infeasible, Exact.Infeasible -> ()
      | Exact.Unknown _, Exact.Unknown _ -> ()
      | a, b ->
          QCheck.Test.fail_reportf "verdicts diverged: packed %s, reference %s"
            (match a with
            | Exact.Feasible _ -> "feasible"
            | Exact.Infeasible -> "infeasible"
            | Exact.Unknown _ -> "unknown"
            | Exact.Timeout _ -> "timeout")
            (match b with
            | Exact.Feasible _ -> "feasible"
            | Exact.Infeasible -> "infeasible"
            | Exact.Unknown _ -> "unknown"
            | Exact.Timeout _ -> "timeout"));
      (* Bypass on (the default): verdict must not change, and any
         shortcut schedule still passes the independent oracle. *)
      (match ((solve ~impl:`Packed ~bypass:true ()).outcome, packed.outcome)
       with
      | Exact.Feasible s, Exact.Feasible _ ->
          if not (oracle_ok m s) then
            QCheck.Test.fail_reportf "bypass schedule fails the oracle";
          if not (meets_agree s) then
            QCheck.Test.fail_reportf "batched verifier diverged (bypass)"
      | Exact.Infeasible, Exact.Infeasible -> ()
      | Exact.Unknown _, Exact.Unknown _ -> ()
      | _ -> QCheck.Test.fail_reportf "bypass changed the verdict");
      (* 4 lanes: bit-identity against the sequential run. *)
      Rt_par.Pool.with_pool ~jobs:4 (fun p ->
          match ((solve ~pool:p ~impl:`Packed ~bypass:false ()).outcome,
                 packed.outcome)
          with
          | Exact.Feasible a, Exact.Feasible b ->
              if not (Schedule.equal a b) then
                QCheck.Test.fail_reportf "pooled packed schedule diverged"
          | Exact.Infeasible, Exact.Infeasible -> ()
          | Exact.Unknown _, Exact.Unknown _ -> ()
          | _ -> QCheck.Test.fail_reportf "pooled packed verdict diverged");
      (* DFS oracle compatibility (check_agreement raises on violation). *)
      let dfs = (Exact.enumerate_atomic ~engine:`Dfs ~max_len:8 m).Exact.outcome in
      (match packed.outcome with
      | Exact.Unknown _ -> () (* budget bound — legal, uninformative *)
      | o -> check_agreement ~what:"qcheck packed vs dfs" m o dfs);
      true)

(* The batched verifier must agree with the per-constraint one on
   degenerate schedules too (absent elements, single slots). *)
let qcheck_meets_all_matches_perconstraint =
  let gen_seed = QCheck.make QCheck.Gen.(int_bound 10_000) in
  QCheck.Test.make ~count:50
    ~name:"meets_all_asynchronous = per-constraint meets_asynchronous" gen_seed
    (fun seed ->
      let g = Rt_graph.Prng.create (1 + seed) in
      let m =
        Rt_workload.Model_gen.single_op_model g ~max_deadline:9
          ~n_constraints:(1 + (seed mod 4))
          ~max_weight:2
          ~target_ratio_sum:(0.3 +. (float_of_int (seed mod 6) /. 10.))
      in
      let asyncs = Model.asynchronous m in
      let agree sched =
        Latency.meets_all_asynchronous m.Model.comm sched asyncs
        = List.for_all
            (fun c -> Latency.meets_asynchronous m.Model.comm sched c)
            asyncs
      in
      let scheds =
        Schedule.of_slots [ Schedule.Run 0 ]
        :: Schedule.of_slots [ Schedule.Idle ]
        ::
        (match (Exact.solve_single_ops ~max_states:100_000 m).Exact.outcome with
        | Exact.Feasible s -> [ s ]
        | _ -> [])
      in
      List.for_all agree scheds)

(* ------------------------------------------------------------------ *)
(* Antichain vs linear-scan oracle                                     *)
(* ------------------------------------------------------------------ *)

let pointwise_le v d =
  Array.length v = Array.length d
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if x > d.(i) then ok := false) v;
  !ok

(* The bucketed antichain must behave exactly like the naive structure
   it replaced — a flat list with linear-scan covered/insert — on any
   insertion sequence, as long as the cap never binds. *)
let qcheck_antichain_matches_linear_oracle =
  let gen_seed = QCheck.make QCheck.Gen.(int_bound 10_000) in
  QCheck.Test.make ~count:60 ~name:"antichain matches linear-scan oracle"
    gen_seed
    (fun seed ->
      let g = Rt_graph.Prng.create (1 + seed) in
      let dims = 2 + Rt_graph.Prng.int g 3 in
      let max_c = 7 in
      let score v = Array.fold_left ( + ) 0 v in
      let ac =
        Rt_par.Antichain.create ~cap:4096 ~subsumed:pointwise_le ~score
          ~max_score:(dims * max_c) ()
      in
      let oracle = ref [] in
      let o_covered v = List.exists (fun d -> pointwise_le v d) !oracle in
      let o_add d =
        if o_covered d then false
        else begin
          oracle := d :: List.filter (fun e -> not (pointwise_le e d)) !oracle;
          true
        end
      in
      let draw () =
        Array.init dims (fun _ -> Rt_graph.Prng.int g (max_c + 1))
      in
      for _ = 1 to 80 do
        let v = draw () in
        let c_ac = Rt_par.Antichain.covered ac v in
        let c_o = o_covered v in
        if c_ac <> c_o then
          QCheck.Test.fail_reportf "covered diverged: antichain %b, oracle %b"
            c_ac c_o;
        let a_ac = Rt_par.Antichain.add ac v in
        let a_o = o_add v in
        if a_ac <> a_o then
          QCheck.Test.fail_reportf "add diverged: antichain %b, oracle %b" a_ac
            a_o;
        if Rt_par.Antichain.size ac <> List.length !oracle then
          QCheck.Test.fail_reportf "size diverged: antichain %d, oracle %d"
            (Rt_par.Antichain.size ac)
            (List.length !oracle)
      done;
      (* The oracle maintains a true antichain; sizes matched at every
         step, so the bucketed structure did too.  Fresh probes must
         still agree after the whole insertion sequence. *)
      List.for_all
        (fun v -> Rt_par.Antichain.covered ac v = o_covered v)
        (List.init 40 (fun _ -> draw ()))
      && Rt_par.Antichain.evictions ac = 0)

let test_antichain_cap_evicts_soundly () =
  (* When the cap binds, eviction may lose kills (covered becomes an
     under-approximation — sound for the engine) but never invents
     them, and every forced drop is counted. *)
  let score v = Array.fold_left ( + ) 0 v in
  let ac =
    Rt_par.Antichain.create ~cap:8 ~subsumed:pointwise_le ~score ~max_score:64
      ()
  in
  let oracle = ref [] in
  (* pairwise-incomparable vectors: (i, 32 - i) *)
  for i = 0 to 31 do
    let v = [| i; 32 - i |] in
    ignore (Rt_par.Antichain.add ac v);
    oracle := v :: !oracle
  done;
  checkb "capped" true (Rt_par.Antichain.size ac <= 8);
  Alcotest.check Alcotest.int "every forced drop is counted"
    (32 - Rt_par.Antichain.size ac)
    (Rt_par.Antichain.evictions ac);
  (* soundness: anything the capped antichain kills, the full set would *)
  let g = Rt_graph.Prng.create 99 in
  for _ = 1 to 200 do
    let v = [| Rt_graph.Prng.int g 40; Rt_graph.Prng.int g 40 |] in
    if Rt_par.Antichain.covered ac v then
      checkb "capped kill implied by full set" true
        (List.exists (fun d -> pointwise_le v d) !oracle)
  done

(* ------------------------------------------------------------------ *)
(* Small-model bypass                                                  *)
(* ------------------------------------------------------------------ *)

let test_bypass_small_models () =
  (* The m = 1 3-partition reductions are exactly the family the bypass
     exists for: a topological concatenation is feasible, so the solve
     must return with zero states expanded — and the schedule must
     still pass the trusted analyser. *)
  List.iter
    (fun b ->
      let prng = Rt_graph.Prng.create 42 in
      let items = Rt_workload.Npc.three_partition_yes prng ~m:1 ~b in
      let m = Rt_workload.Npc.reduction_model items ~b in
      (match Game.solve ~granularity:`Atomic m with
      | { explored = 0; outcome = Feasible s } ->
          checkb "bypass schedule passes the oracle" true (oracle_ok m s)
      | { explored; outcome = Feasible _ } ->
          Alcotest.failf "bypass missed: %d states expanded" explored
      | _ -> Alcotest.fail "m=1 3-partition reduction must be feasible");
      (* bypass off: the engine proper agrees, doing real work *)
      match Game.solve ~bypass:false ~granularity:`Atomic m with
      | { explored; outcome = Feasible s } ->
          checkb "engine schedule passes the oracle" true (oracle_ok m s);
          checkb "engine searched" true (explored > 0)
      | _ -> Alcotest.fail "engine must agree with the bypass")
    [ 13; 17 ]

let test_bypass_infeasible_falls_through () =
  (* A failed shortcut proves nothing: the engine must still run and
     return its definitive verdict. *)
  match Game.solve ~granularity:`Atomic Rt_workload.Suite.infeasible_pair with
  | { outcome = Infeasible; _ } -> ()
  | { outcome = Feasible _; _ } ->
      Alcotest.fail "infeasible_pair cannot be feasible"
  | _ -> Alcotest.fail "small infeasible model must get a definitive verdict"

(* ------------------------------------------------------------------ *)
(* Shard_tbl                                                           *)
(* ------------------------------------------------------------------ *)

let test_shard_tbl_basics () =
  let t =
    Rt_par.Shard_tbl.create ~shards:4
      ~hash:Rt_par.Shard_tbl.Int_array.hash
      ~equal:Rt_par.Shard_tbl.Int_array.equal 16
  in
  Alcotest.check Alcotest.int "empty" 0 (Rt_par.Shard_tbl.length t);
  for i = 0 to 999 do
    Rt_par.Shard_tbl.add t [| i; i * 7 |] i
  done;
  Alcotest.check Alcotest.int "length" 1000 (Rt_par.Shard_tbl.length t);
  checkb "find" true (Rt_par.Shard_tbl.find_opt t [| 123; 861 |] = Some 123);
  checkb "mem miss" false (Rt_par.Shard_tbl.mem t [| 1000; 7000 |]);
  Rt_par.Shard_tbl.add t [| 123; 861 |] (-1);
  checkb "replace" true (Rt_par.Shard_tbl.find_opt t [| 123; 861 |] = Some (-1));
  Alcotest.check Alcotest.int "replace keeps length" 1000
    (Rt_par.Shard_tbl.length t);
  Alcotest.check Alcotest.int "find_or_add existing" (-1)
    (Rt_par.Shard_tbl.find_or_add t [| 123; 861 |] (fun () -> 99));
  Alcotest.check Alcotest.int "find_or_add fresh" 99
    (Rt_par.Shard_tbl.find_or_add t [| -5 |] (fun () -> 99))

let test_shard_tbl_eviction () =
  let mk max_entries =
    Rt_par.Shard_tbl.create ~shards:4 ~max_entries
      ~hash:Rt_par.Shard_tbl.Int_array.hash
      ~equal:Rt_par.Shard_tbl.Int_array.equal 16
  in
  let t = mk 64 in
  for i = 0 to 999 do
    Rt_par.Shard_tbl.add t [| i; i * 7 |] i
  done;
  (* Cap 64 over 4 shards = 16 per shard; a thousand inserts must keep
     the table at the cap and count every forced drop. *)
  checkb "capped length" true (Rt_par.Shard_tbl.length t <= 64);
  Alcotest.check Alcotest.int "evictions account for the overflow"
    (1000 - Rt_par.Shard_tbl.length t)
    (Rt_par.Shard_tbl.evictions t);
  (* Replacing an existing binding must not evict. *)
  let t2 = mk 4 in
  Rt_par.Shard_tbl.add t2 [| 1 |] 1;
  Rt_par.Shard_tbl.add t2 [| 1 |] 2;
  checkb "replace under cap" true
    (Rt_par.Shard_tbl.find_opt t2 [| 1 |] = Some 2);
  Alcotest.check Alcotest.int "no evictions on replace" 0
    (Rt_par.Shard_tbl.evictions t2);
  (* An uncapped table never evicts. *)
  let t3 =
    Rt_par.Shard_tbl.create ~shards:4
      ~hash:Rt_par.Shard_tbl.Int_array.hash
      ~equal:Rt_par.Shard_tbl.Int_array.equal 16
  in
  for i = 0 to 999 do
    Rt_par.Shard_tbl.add t3 [| i |] i
  done;
  Alcotest.check Alcotest.int "uncapped keeps everything" 1000
    (Rt_par.Shard_tbl.length t3);
  Alcotest.check Alcotest.int "uncapped never evicts" 0
    (Rt_par.Shard_tbl.evictions t3)

let test_shard_tbl_concurrent () =
  let t =
    Rt_par.Shard_tbl.create ~hash:Rt_par.Shard_tbl.Int_array.hash
      ~equal:Rt_par.Shard_tbl.Int_array.equal 16
  in
  let n_dom = 4 and per = 2000 in
  let doms =
    List.init n_dom (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              (* Half the keys are shared across domains, half private
                 (negative first component keeps them disjoint from the
                 shared ones): exercises contention and disjoint
                 inserts. *)
              Rt_par.Shard_tbl.add t [| i mod 1000; (i mod 1000) * 3 |] i;
              Rt_par.Shard_tbl.add t [| -d - 1; i |] i
            done))
  in
  List.iter Domain.join doms;
  Alcotest.check Alcotest.int "all bindings present"
    (1000 + (n_dom * per))
    (Rt_par.Shard_tbl.length t);
  checkb "shared key readable" true
    (Rt_par.Shard_tbl.mem t [| 500; 1500 |])

let () =
  Alcotest.run "rt_core-game"
    [
      ( "engine-equivalence",
        [
          Alcotest.test_case "game = dfs on unit chains" `Slow
            test_game_eq_dfs_unit;
          Alcotest.test_case "game = dfs on unit single ops" `Slow
            test_game_eq_dfs_single_ops;
          Alcotest.test_case "game = dfs on weighted single ops" `Slow
            test_game_eq_dfs_atomic;
          Alcotest.test_case "game = dfs on atomic task graphs" `Slow
            test_game_eq_dfs_atomic_graphs;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel game = sequential" `Slow
            test_game_pool_equals_sequential;
          Alcotest.test_case "budget yields unknown" `Quick
            test_game_budget_yields_unknown;
        ] );
      ( "packed-vs-reference",
        [
          QCheck_alcotest.to_alcotest qcheck_packed_eq_reference;
          QCheck_alcotest.to_alcotest qcheck_meets_all_matches_perconstraint;
        ] );
      ( "antichain",
        [
          QCheck_alcotest.to_alcotest qcheck_antichain_matches_linear_oracle;
          Alcotest.test_case "cap evicts soundly" `Quick
            test_antichain_cap_evicts_soundly;
        ] );
      ( "bypass",
        [
          Alcotest.test_case "small models solved with zero expansion" `Quick
            test_bypass_small_models;
          Alcotest.test_case "failed shortcut falls through" `Quick
            test_bypass_infeasible_falls_through;
        ] );
      ( "shard-tbl",
        [
          Alcotest.test_case "basics" `Quick test_shard_tbl_basics;
          Alcotest.test_case "eviction" `Quick test_shard_tbl_eviction;
          Alcotest.test_case "concurrent" `Quick test_shard_tbl_concurrent;
        ] );
    ]
