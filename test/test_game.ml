(* Engine-equivalence properties for the state-space game engine.

   The game engine (Game.solve, the default behind Exact.enumerate /
   enumerate_atomic / solve_single_ops) and the original bounded DFS
   are independent deciders of the same question, so on random models
   they must never contradict each other:

   - `Dfs Feasible  => `Game Feasible (the game search is complete);
   - `Game Infeasible => `Dfs must not find a schedule at any bound;
   - every `Game Feasible schedule must pass the latency analyser run
     as an oracle (per-constraint meets_asynchronous and the uncached
     whole-model verify), because a game cycle is only a real schedule
     if the residue/budget bookkeeping is sound.

   CI greps for these test names; renaming them silently disables the
   gate (.github/workflows/ci.yml). *)

open Rt_core

let checkb = Alcotest.check Alcotest.bool

let oracle_ok m sched =
  List.for_all
    (fun c -> Latency.meets_asynchronous m.Model.comm sched c)
    (Model.asynchronous m)
  && Latency.all_ok (Latency.verify ~cached:false m sched)

(* Compatibility of a definitive game verdict with a bounded DFS one.
   [Unknown] from the game engine would mean the state budget bound —
   models here are sized so it must not bind. *)
let check_agreement ~what m game dfs =
  match (game, dfs) with
  | Exact.Feasible sched, (Exact.Feasible _ | Exact.Unknown _) ->
      checkb (what ^ ": game schedule passes the oracle") true
        (oracle_ok m sched)
  | Exact.Infeasible, Exact.Unknown _ -> ()
  | Exact.Infeasible, Exact.Infeasible -> ()
  | Exact.Infeasible, Exact.Feasible s ->
      Alcotest.failf "%s: game says infeasible but DFS found %s" what
        (Format.asprintf "%a" Schedule.pp s)
  | Exact.Feasible _, Exact.Infeasible ->
      Alcotest.failf "%s: bounded DFS must never report Infeasible" what
  | Exact.Unknown msg, _ ->
      Alcotest.failf "%s: game state budget must not bind here (%s)" what msg
  | Exact.Timeout msg, _ | _, Exact.Timeout msg ->
      Alcotest.failf "%s: no budget was supplied (%s)" what msg

let test_game_eq_dfs_unit () =
  let g = Rt_graph.Prng.create 1009 in
  for i = 1 to 30 do
    let m =
      Rt_workload.Model_gen.unit_chain_model g
        ~n_constraints:(1 + Rt_graph.Prng.int g 3)
        ~n_elements:(3 + Rt_graph.Prng.int g 2)
        ~max_deadline:7
    in
    let game = (Exact.enumerate ~engine:`Game m).Exact.outcome in
    let dfs = (Exact.enumerate ~engine:`Dfs ~max_len:7 m).Exact.outcome in
    check_agreement ~what:(Printf.sprintf "unit chains #%d" i) m game dfs
  done

let test_game_eq_dfs_single_ops () =
  let g = Rt_graph.Prng.create 2003 in
  for i = 1 to 30 do
    let m =
      Rt_workload.Model_gen.single_op_model ~max_deadline:9 g
        ~n_constraints:(1 + Rt_graph.Prng.int g 3)
        ~max_weight:1
        ~target_ratio_sum:(0.3 +. Rt_graph.Prng.float g 1.0)
    in
    let game = (Exact.enumerate ~engine:`Game m).Exact.outcome in
    let dfs = (Exact.enumerate ~engine:`Dfs ~max_len:8 m).Exact.outcome in
    check_agreement ~what:(Printf.sprintf "unit single ops #%d" i) m game dfs
  done

let test_game_eq_dfs_atomic () =
  let g = Rt_graph.Prng.create 3001 in
  for i = 1 to 25 do
    let m =
      Rt_workload.Model_gen.single_op_model ~max_deadline:9 g
        ~n_constraints:2 ~max_weight:3
        ~target_ratio_sum:(0.4 +. Rt_graph.Prng.float g 0.8)
    in
    let game = (Exact.enumerate_atomic ~engine:`Game m).Exact.outcome in
    let dfs =
      (Exact.enumerate_atomic ~engine:`Dfs ~max_len:10 m).Exact.outcome
    in
    check_agreement ~what:(Printf.sprintf "weighted singles #%d" i) m game dfs
  done

let test_game_eq_dfs_atomic_graphs () =
  (* Weighted multi-operation task graphs: the residue game with
     dominance disabled, against the atomic-block DFS. *)
  let g = Rt_graph.Prng.create 4007 in
  for i = 1 to 15 do
    let m =
      Rt_workload.Model_gen.theorem3_model g
        ~n_constraints:(1 + Rt_graph.Prng.int g 2)
        ~max_weight:2
    in
    let game =
      (Exact.enumerate_atomic ~engine:`Game ~max_states:200_000 m)
        .Exact.outcome
    in
    let dfs =
      (Exact.enumerate_atomic ~engine:`Dfs ~max_len:8 m).Exact.outcome
    in
    match (game, dfs) with
    | Exact.Unknown _, _ ->
        (* Theorem-3 deadlines can be large; the state budget may bind.
           That is a legal answer, just not an informative sample. *)
        ()
    | _ ->
        check_agreement ~what:(Printf.sprintf "atomic graphs #%d" i) m game dfs
  done

let test_game_pool_equals_sequential () =
  (* The pooled game must return the bit-identical schedule: branches
     share only path-independent dead-state facts, so the lowest-index
     cycle is invariant.  (CI greps this name; see also test_par.ml.) *)
  let g = Rt_graph.Prng.create 5003 in
  Rt_par.Pool.with_pool ~jobs:4 (fun p ->
      for _ = 1 to 12 do
        let m =
          Rt_workload.Model_gen.unit_chain_model g ~n_constraints:2
            ~n_elements:3 ~max_deadline:6
        in
        let seq = (Exact.enumerate ~engine:`Game m).Exact.outcome in
        let par = (Exact.enumerate ~engine:`Game ~pool:p m).Exact.outcome in
        match (seq, par) with
        | Exact.Feasible a, Exact.Feasible b ->
            checkb "same schedule" true (Schedule.equal a b)
        | Exact.Infeasible, Exact.Infeasible -> ()
        | _ -> Alcotest.fail "pooled game diverged from sequential"
      done;
      for _ = 1 to 12 do
        let m =
          Rt_workload.Model_gen.single_op_model ~max_deadline:10 g
            ~n_constraints:3 ~max_weight:3
            ~target_ratio_sum:(0.4 +. Rt_graph.Prng.float g 0.8)
        in
        let seq = (Exact.solve_single_ops m).Exact.outcome in
        let par = (Exact.solve_single_ops ~pool:p m).Exact.outcome in
        match (seq, par) with
        | Exact.Feasible a, Exact.Feasible b ->
            checkb "same schedule" true (Schedule.equal a b)
        | Exact.Infeasible, Exact.Infeasible -> ()
        | _ -> Alcotest.fail "pooled single-op game diverged from sequential"
      done)

let test_game_budget_yields_unknown () =
  let g = Rt_graph.Prng.create 6011 in
  let m =
    Rt_workload.Model_gen.unit_chain_model g ~n_constraints:3 ~n_elements:4
      ~max_deadline:8
  in
  match (Exact.enumerate ~engine:`Game ~max_states:4 m).Exact.outcome with
  | Exact.Unknown _ -> ()
  | Exact.Feasible _ -> Alcotest.fail "4 states cannot suffice"
  | Exact.Infeasible -> Alcotest.fail "must not claim infeasible when truncated"
  | Exact.Timeout _ -> Alcotest.fail "no budget was supplied"

(* ------------------------------------------------------------------ *)
(* Shard_tbl                                                           *)
(* ------------------------------------------------------------------ *)

let test_shard_tbl_basics () =
  let t =
    Rt_par.Shard_tbl.create ~shards:4
      ~hash:Rt_par.Shard_tbl.Int_array.hash
      ~equal:Rt_par.Shard_tbl.Int_array.equal 16
  in
  Alcotest.check Alcotest.int "empty" 0 (Rt_par.Shard_tbl.length t);
  for i = 0 to 999 do
    Rt_par.Shard_tbl.add t [| i; i * 7 |] i
  done;
  Alcotest.check Alcotest.int "length" 1000 (Rt_par.Shard_tbl.length t);
  checkb "find" true (Rt_par.Shard_tbl.find_opt t [| 123; 861 |] = Some 123);
  checkb "mem miss" false (Rt_par.Shard_tbl.mem t [| 1000; 7000 |]);
  Rt_par.Shard_tbl.add t [| 123; 861 |] (-1);
  checkb "replace" true (Rt_par.Shard_tbl.find_opt t [| 123; 861 |] = Some (-1));
  Alcotest.check Alcotest.int "replace keeps length" 1000
    (Rt_par.Shard_tbl.length t);
  Alcotest.check Alcotest.int "find_or_add existing" (-1)
    (Rt_par.Shard_tbl.find_or_add t [| 123; 861 |] (fun () -> 99));
  Alcotest.check Alcotest.int "find_or_add fresh" 99
    (Rt_par.Shard_tbl.find_or_add t [| -5 |] (fun () -> 99))

let test_shard_tbl_eviction () =
  let mk max_entries =
    Rt_par.Shard_tbl.create ~shards:4 ~max_entries
      ~hash:Rt_par.Shard_tbl.Int_array.hash
      ~equal:Rt_par.Shard_tbl.Int_array.equal 16
  in
  let t = mk 64 in
  for i = 0 to 999 do
    Rt_par.Shard_tbl.add t [| i; i * 7 |] i
  done;
  (* Cap 64 over 4 shards = 16 per shard; a thousand inserts must keep
     the table at the cap and count every forced drop. *)
  checkb "capped length" true (Rt_par.Shard_tbl.length t <= 64);
  Alcotest.check Alcotest.int "evictions account for the overflow"
    (1000 - Rt_par.Shard_tbl.length t)
    (Rt_par.Shard_tbl.evictions t);
  (* Replacing an existing binding must not evict. *)
  let t2 = mk 4 in
  Rt_par.Shard_tbl.add t2 [| 1 |] 1;
  Rt_par.Shard_tbl.add t2 [| 1 |] 2;
  checkb "replace under cap" true
    (Rt_par.Shard_tbl.find_opt t2 [| 1 |] = Some 2);
  Alcotest.check Alcotest.int "no evictions on replace" 0
    (Rt_par.Shard_tbl.evictions t2);
  (* An uncapped table never evicts. *)
  let t3 =
    Rt_par.Shard_tbl.create ~shards:4
      ~hash:Rt_par.Shard_tbl.Int_array.hash
      ~equal:Rt_par.Shard_tbl.Int_array.equal 16
  in
  for i = 0 to 999 do
    Rt_par.Shard_tbl.add t3 [| i |] i
  done;
  Alcotest.check Alcotest.int "uncapped keeps everything" 1000
    (Rt_par.Shard_tbl.length t3);
  Alcotest.check Alcotest.int "uncapped never evicts" 0
    (Rt_par.Shard_tbl.evictions t3)

let test_shard_tbl_concurrent () =
  let t =
    Rt_par.Shard_tbl.create ~hash:Rt_par.Shard_tbl.Int_array.hash
      ~equal:Rt_par.Shard_tbl.Int_array.equal 16
  in
  let n_dom = 4 and per = 2000 in
  let doms =
    List.init n_dom (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              (* Half the keys are shared across domains, half private
                 (negative first component keeps them disjoint from the
                 shared ones): exercises contention and disjoint
                 inserts. *)
              Rt_par.Shard_tbl.add t [| i mod 1000; (i mod 1000) * 3 |] i;
              Rt_par.Shard_tbl.add t [| -d - 1; i |] i
            done))
  in
  List.iter Domain.join doms;
  Alcotest.check Alcotest.int "all bindings present"
    (1000 + (n_dom * per))
    (Rt_par.Shard_tbl.length t);
  checkb "shared key readable" true
    (Rt_par.Shard_tbl.mem t [| 500; 1500 |])

let () =
  Alcotest.run "rt_core-game"
    [
      ( "engine-equivalence",
        [
          Alcotest.test_case "game = dfs on unit chains" `Slow
            test_game_eq_dfs_unit;
          Alcotest.test_case "game = dfs on unit single ops" `Slow
            test_game_eq_dfs_single_ops;
          Alcotest.test_case "game = dfs on weighted single ops" `Slow
            test_game_eq_dfs_atomic;
          Alcotest.test_case "game = dfs on atomic task graphs" `Slow
            test_game_eq_dfs_atomic_graphs;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel game = sequential" `Slow
            test_game_pool_equals_sequential;
          Alcotest.test_case "budget yields unknown" `Quick
            test_game_budget_yields_unknown;
        ] );
      ( "shard-tbl",
        [
          Alcotest.test_case "basics" `Quick test_shard_tbl_basics;
          Alcotest.test_case "eviction" `Quick test_shard_tbl_eviction;
          Alcotest.test_case "concurrent" `Quick test_shard_tbl_concurrent;
        ] );
    ]
