(* Tests for the extension modules: Optimize, Admission, Gantt,
   Monitor_sim, and the merge-fallback behaviour of Synthesis. *)

open Rt_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let example = Rt_workload.Suite.control_system Rt_workload.Suite.default_params

let example_plan =
  match Synthesis.synthesize example with
  | Ok p -> p
  | Error _ -> assert false

(* ------------------------------------------------------------------ *)
(* Optimize                                                            *)
(* ------------------------------------------------------------------ *)

let test_trim_idle_keeps_feasibility () =
  let m = example_plan.Synthesis.model_used in
  let sched = example_plan.Synthesis.schedule in
  let optimized, report = Optimize.trim_idle m sched in
  checkb "still verifies" true (Latency.all_ok (Latency.verify m optimized));
  checkb "never longer" true
    (Schedule.length optimized <= Schedule.length sched);
  checki "report consistent"
    (Schedule.length sched - Schedule.length optimized)
    report.Optimize.removed_idle

let test_trim_idle_removes_pure_slack () =
  (* One unit op with a huge deadline and lots of idle: trimming must
     shrink the cycle. *)
  let comm = Comm_graph.create ~elements:[ ("a", 1, true) ] ~edges:[] in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:50
            ~deadline:40 ~kind:Timing.Asynchronous;
        ]
  in
  let padded =
    Schedule.of_slots
      (Schedule.Run 0 :: List.init 20 (fun _ -> Schedule.Idle))
  in
  checkb "padded verifies" true (Latency.all_ok (Latency.verify m padded));
  let optimized, report = Optimize.trim_idle m padded in
  checkb "shorter" true (Schedule.length optimized < 21);
  checkb "idle removed" true (report.Optimize.removed_idle > 0);
  checkb "still verifies" true (Latency.all_ok (Latency.verify m optimized))

let test_trim_idle_rejects_infeasible_input () =
  let comm = Comm_graph.create ~elements:[ ("a", 1, true) ] ~edges:[] in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:4
            ~deadline:2 ~kind:Timing.Asynchronous;
        ]
  in
  let bad = Schedule.of_slots [ Schedule.Run 0; Schedule.Idle; Schedule.Idle ] in
  checkb "raises" true
    (try
       ignore (Optimize.trim_idle m bad);
       false
     with Invalid_argument _ -> true)

let test_canonical_rotation () =
  let s =
    Schedule.of_slots [ Schedule.Idle; Schedule.Run 1; Schedule.Run 0 ]
  in
  let c = Optimize.canonical_rotation s in
  checkb "starts with smallest element" true
    (Schedule.slot c 0 = Schedule.Run 0);
  (* All rotations share the same canonical form. *)
  for k = 0 to 2 do
    checkb "rotation invariant" true
      (Schedule.equal c (Optimize.canonical_rotation (Schedule.rotate s k)))
  done

let test_fundamental_period () =
  let s =
    Schedule.of_slots
      [ Schedule.Run 0; Schedule.Idle; Schedule.Run 0; Schedule.Idle ]
  in
  let f = Optimize.fundamental_period s in
  checki "halved" 2 (Schedule.length f);
  checkb "same induced trace" true
    (Array.for_all2 ( = ) (Schedule.unroll f 8) (Schedule.unroll s 8));
  (* Aperiodic cycles are returned unchanged. *)
  let a = Schedule.of_slots [ Schedule.Run 0; Schedule.Run 1; Schedule.Run 0 ] in
  checkb "aperiodic unchanged" true
    (Schedule.equal a (Optimize.fundamental_period a));
  (* Verdicts are untouched by construction: same trace. *)
  let m = example_plan.Synthesis.model_used in
  let sched = example_plan.Synthesis.schedule in
  let fp = Optimize.fundamental_period sched in
  checkb "plan verdicts preserved" true
    (Latency.all_ok (Latency.verify m fp))

let test_slack_profile () =
  let m = example_plan.Synthesis.model_used in
  let slack = Optimize.slack_profile m example_plan.Synthesis.schedule in
  checki "three constraints" 3 (List.length slack);
  List.iter (fun (_, s) -> checkb "non-negative slack" true (s >= 0)) slack

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let test_admission_impossible_weight () =
  let comm = Comm_graph.create ~elements:[ ("a", 5, true) ] ~edges:[] in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:9
            ~deadline:3 ~kind:Timing.Asynchronous;
        ]
  in
  match Admission.admit m with
  | Admission.Impossible _ -> ()
  | _ -> Alcotest.fail "w=5 > d=3 must be impossible"

let test_admission_impossible_rate () =
  (* Two unit ops each needing presence in every 1-slot window. *)
  match Admission.admit Rt_workload.Suite.infeasible_pair with
  | Admission.Impossible _ -> ()
  | _ -> Alcotest.fail "rate bound must fire"

let test_admission_guaranteed_theorem3 () =
  let g = Rt_graph.Prng.create 8 in
  for _ = 1 to 20 do
    let m = Rt_workload.Model_gen.theorem3_model g ~n_constraints:3 ~max_weight:3 in
    match Admission.admit m with
    | Admission.Guaranteed "theorem3" ->
        (* The certificate must be honoured by the constructive
           scheduler. *)
        checkb "construction succeeds" true
          (match Theorem3.schedule m with Ok _ -> true | Error _ -> false)
    | _ -> Alcotest.fail "theorem3 premises hold by construction"
  done

let test_admission_guaranteed_edf () =
  let comm =
    Comm_graph.create
      ~elements:[ ("a", 2, true); ("b", 3, true) ]
      ~edges:[]
  in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"ca" ~graph:(Task_graph.singleton 0) ~period:4
            ~deadline:4 ~kind:Timing.Periodic;
          Timing.make ~name:"cb" ~graph:(Task_graph.singleton 1) ~period:8
            ~deadline:8 ~kind:Timing.Periodic;
        ]
  in
  (match Admission.admit m with
  | Admission.Guaranteed "edf-periodic" -> ()
  | _ -> Alcotest.fail "U = 0.875, disjoint, implicit: EDF-guaranteed");
  checkb "synthesis honours the certificate" true
    (match Synthesis.synthesize m with Ok _ -> true | Error _ -> false)

let test_admission_inconclusive () =
  (* The default example: premises fail, async present -> inconclusive,
     yet synthesizable (the gap Theorem 2 predicts). *)
  match Admission.admit example with
  | Admission.Inconclusive -> ()
  | Admission.Guaranteed _ -> Alcotest.fail "no sufficient test applies"
  | Admission.Impossible why -> Alcotest.failf "not impossible: %s" why

let test_admission_never_contradicts_synthesis () =
  (* Impossible => synthesis must fail; Guaranteed(edf) => must
     succeed. *)
  let g = Rt_graph.Prng.create 909 in
  for _ = 1 to 40 do
    let m =
      Rt_workload.Model_gen.periodic_chain_model g ~n_constraints:3
        ~utilization:(0.5 +. Rt_graph.Prng.float g 0.9)
        ~periods:[ 8; 16; 32 ]
    in
    match Admission.admit m with
    | Admission.Impossible _ -> (
        match Synthesis.synthesize ~max_hyperperiod:50_000 m with
        | Ok _ -> Alcotest.fail "impossible model synthesized"
        | Error _ -> ())
    | Admission.Guaranteed _ -> (
        match Synthesis.synthesize m with
        | Ok _ -> () (* full cap: the certificate must be honoured *)
        | Error e ->
            Alcotest.failf "guaranteed model failed synthesis: %s"
              e.Synthesis.message)
    | Admission.Inconclusive -> ()
  done

let test_admission_edf_with_offsets () =
  let comm =
    Comm_graph.create ~elements:[ ("a", 2, true); ("b", 2, true) ] ~edges:[]
  in
  let mk name elem offset d =
    let c =
      Timing.make ~name ~graph:(Task_graph.singleton elem) ~period:8
        ~deadline:d ~kind:Timing.Periodic
    in
    if offset = 0 then c else Timing.with_offset c offset
  in
  let fits = Model.make ~comm ~constraints:[ mk "ca" 0 0 4; mk "cb" 1 4 4 ] in
  (match Admission.admit fits with
  | Admission.Guaranteed _ ->
      checkb "certificate realizable" true
        (match Synthesis.synthesize fits with Ok _ -> true | Error _ -> false)
  | Admission.Impossible why -> Alcotest.failf "not impossible: %s" why
  | Admission.Inconclusive -> Alcotest.fail "phased pair is EDF-certain");
  (* offset + d > p: the constructor cannot realize it, so the
     certificate must not fire. *)
  let spills = Model.make ~comm ~constraints:[ mk "ca" 0 6 4; mk "cb" 1 0 4 ] in
  match Admission.admit spills with
  | Admission.Guaranteed how ->
      Alcotest.failf "unrealizable certificate %s" how
  | Admission.Impossible _ | Admission.Inconclusive -> ()

let test_admission_merged_route () =
  (* Same-period constraints sharing an element at modest load: the
     direct EDF test is defeated by the sharing, the merged route
     certifies it, and synthesis honours the certificate. *)
  let g = Rt_graph.Prng.create 606 in
  let m =
    Rt_workload.Model_gen.shared_block_model g ~n_pairs:2 ~shared_weight:2
      ~private_weight:1 ~period:20
  in
  (match Admission.admit m with
  | Admission.Guaranteed "edf-periodic-merged" -> ()
  | Admission.Guaranteed other ->
      Alcotest.failf "unexpected certificate %s" other
  | Admission.Impossible why -> Alcotest.failf "impossible: %s" why
  | Admission.Inconclusive -> Alcotest.fail "merged route should certify");
  checkb "synthesis honours it" true
    (match Synthesis.synthesize m with Ok _ -> true | Error _ -> false)

let test_schedule_of_string_roundtrip () =
  let m = example_plan.Synthesis.model_used in
  let sched = example_plan.Synthesis.schedule in
  (match Schedule.of_string m.Model.comm (Schedule.to_string m.Model.comm sched) with
  | Ok back -> checkb "round-trip" true (Schedule.equal back sched)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Schedule.of_string m.Model.comm "f_x nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown element must fail");
  match Schedule.of_string m.Model.comm "   " with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty must fail"

let test_demand_bound () =
  let comm = Comm_graph.create ~elements:[ ("a", 2, true) ] ~edges:[] in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:10
            ~deadline:6 ~kind:Timing.Periodic;
        ]
  in
  checki "before deadline" 0 (Admission.demand_bound m 5);
  checki "at deadline" 2 (Admission.demand_bound m 6);
  checki "second job" 4 (Admission.demand_bound m 16)

let test_rate_bound_kinds () =
  let comm = Comm_graph.create ~elements:[ ("a", 2, true) ] ~edges:[] in
  let mk kind =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:10
            ~deadline:6 ~kind;
        ]
  in
  (* Async: max(w/(d+1-w), w/d) = max(2/5, 2/6) = 0.4. *)
  Alcotest.check (Alcotest.float 1e-9) "async rate" 0.4
    (Admission.rate_bound (mk Timing.Asynchronous));
  (* Periodic (d <= p): w/p = 0.2. *)
  Alcotest.check (Alcotest.float 1e-9) "periodic rate" 0.2
    (Admission.rate_bound (mk Timing.Periodic))

let test_sensitivity_scale_clamps_offset () =
  let comm = Comm_graph.create ~elements:[ ("a", 1, true) ] ~edges:[] in
  let c =
    Timing.with_offset
      (Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:10
         ~deadline:4 ~kind:Timing.Periodic)
      6
  in
  let m = Model.make ~comm ~constraints:[ c ] in
  (* Scaling to 1/10 gives period 1; the offset must clamp below it. *)
  let m' = Sensitivity.scaled_time m ~num:1 ~den:10 in
  let c' = Model.find m' "c" in
  checki "period floored" 1 c'.Timing.period;
  checkb "offset clamped into range" true (c'.Timing.offset < c'.Timing.period)

(* ------------------------------------------------------------------ *)
(* Gantt                                                               *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_gantt_render () =
  let comm =
    Comm_graph.create ~elements:[ ("a", 1, true); ("b", 1, true) ] ~edges:[]
  in
  let sched =
    Schedule.of_slots [ Schedule.Run 0; Schedule.Run 1; Schedule.Idle ]
  in
  let out = Gantt.render comm sched in
  checkb "a row" true (contains out "a  #--");
  checkb "b row" true (contains out "b  -#-");
  let leg = Gantt.legend comm sched in
  checkb "legend counts" true (contains leg "a: 1/3 slots");
  (* Window rendering wraps around the cycle. *)
  let w = Gantt.render_window comm sched ~t0:2 ~t1:5 in
  checkb "wrapped a" true (contains w "a  -#-")

let test_gantt_omits_unused () =
  let comm =
    Comm_graph.create ~elements:[ ("a", 1, true); ("zz", 1, true) ] ~edges:[]
  in
  let sched = Schedule.of_slots [ Schedule.Run 0 ] in
  checkb "unused element omitted" false (contains (Gantt.render comm sched) "zz")

let test_gantt_chunks () =
  let comm = Comm_graph.create ~elements:[ ("a", 1, true) ] ~edges:[] in
  let sched = Schedule.of_slots (List.init 100 (fun _ -> Schedule.Run 0)) in
  let out = Gantt.render ~width:40 comm sched in
  (* Three chunks -> three 'a' rows. *)
  let rows =
    String.split_on_char '\n' out
    |> List.filter (fun l -> String.length l > 0 && l.[0] = 'a')
  in
  checki "three chunks" 3 (List.length rows)

(* ------------------------------------------------------------------ *)
(* Monitor_sim                                                         *)
(* ------------------------------------------------------------------ *)

(* Classic inversion scenario: lo acquires the monitor, hi arrives and
   blocks on it, mid preempts lo (without inheritance) stretching hi's
   wait arbitrarily. *)
(* lo (loose deadline) grabs the shared monitor at t=0; hi arrives at
   t=2 and blocks on it; mid (monitor-free) arrives at t=3.  Without
   inheritance mid preempts lo while hi waits — the classic unbounded
   inversion; with inheritance lo runs at hi's priority until it
   releases. *)
let inversion_model =
  let comm =
    Comm_graph.create
      ~elements:
        [ ("shared", 4, false); ("hi_pre", 1, true); ("mid_work", 6, true) ]
      ~edges:[]
  in
  Model.make ~comm
    ~constraints:
      [
        Timing.make ~name:"hi" ~graph:(Task_graph.singleton 0) ~period:40
          ~deadline:12 ~kind:Timing.Asynchronous;
        Timing.make ~name:"mid" ~graph:(Task_graph.singleton 2) ~period:40
          ~deadline:20 ~kind:Timing.Asynchronous;
        Timing.make ~name:"lo" ~graph:(Task_graph.singleton 0) ~period:40
          ~deadline:40 ~kind:Timing.Periodic;
      ]

let inversion_arrivals = [ ("hi", [ 2 ]); ("mid", [ 3 ]) ]

let test_monitor_sim_inheritance_bounds_blocking () =
  let tr = Rt_process.From_model.translate inversion_model in
  let run protocol =
    Rt_sim.Monitor_sim.simulate
      ~config:
        {
          Rt_sim.Monitor_sim.protocol;
          assignment = Rt_process.Fixed_priority.Deadline_monotonic;
        }
      ~arrivals:inversion_arrivals inversion_model tr ~horizon:40
  in
  let with_inh = run Rt_sim.Monitor_sim.Inheritance in
  let without = run Rt_sim.Monitor_sim.No_protocol in
  let blocking r name =
    Option.value ~default:0 (List.assoc_opt name r.Rt_sim.Monitor_sim.max_blocking)
  in
  (* Without inheritance, mid preempts lo while hi waits: hi's
     inversion includes mid's whole computation. *)
  checkb "inversion grows without inheritance" true
    (blocking without "hi" > blocking with_inh "hi");
  (* With inheritance, hi's blocking is bounded by the critical
     section. *)
  checkb "inheritance bounds blocking by the critical section" true
    (blocking with_inh "hi" <= 4)

let test_monitor_sim_mutual_exclusion () =
  (* Both users of the shared element never hold it simultaneously —
     observable as: in every run the shared element's executions are
     serialized, so total shared slots = 2 executions * weight. *)
  let tr = Rt_process.From_model.translate inversion_model in
  let r =
    Rt_sim.Monitor_sim.simulate ~arrivals:inversion_arrivals inversion_model
      tr ~horizon:40
  in
  checki "three jobs" 3 (List.length r.Rt_sim.Monitor_sim.jobs);
  List.iter
    (fun (o : Rt_sim.Monitor_sim.job_outcome) ->
      match o.finish with
      | Some f -> checkb "progress" true (f > o.release)
      | None -> ())
    r.Rt_sim.Monitor_sim.jobs

(* Two monitors entered in opposite orders by two processes: the
   classic deadlock.  PCP must prevent it; plain monitors and bare
   inheritance must exhibit it (and the simulator must detect it). *)
let deadlock_fixture () =
  let comm =
    Comm_graph.create
      ~elements:[ ("m1", 2, false); ("m2", 2, false) ]
      ~edges:[]
  in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"hi" ~graph:(Task_graph.singleton 0) ~period:50
            ~deadline:14 ~kind:Timing.Asynchronous;
          Timing.make ~name:"lo" ~graph:(Task_graph.singleton 1) ~period:50
            ~deadline:30 ~kind:Timing.Asynchronous;
        ]
  in
  let proc name d =
    Rt_process.Process.make ~name ~c:4 ~p:50 ~d
      ~kind:Rt_process.Process.Sporadic_process
  in
  let open Rt_process.Codegen in
  let prog name steps = { process_name = name; steps; wcet = 4 } in
  let tr =
    {
      Rt_process.From_model.processes = [ proc "hi" 14; proc "lo" 30 ];
      programs =
        [
          prog "hi"
            [ Enter 0; Call 0; Enter 1; Call 1; Leave 1; Leave 0 ];
          prog "lo"
            [ Enter 1; Call 1; Enter 0; Call 0; Leave 0; Leave 1 ];
        ];
      monitors = [];
    }
  in
  (m, tr)

let test_monitor_sim_deadlock_detected () =
  let m, tr = deadlock_fixture () in
  let run protocol =
    Rt_sim.Monitor_sim.simulate
      ~config:
        {
          Rt_sim.Monitor_sim.protocol;
          assignment = Rt_process.Fixed_priority.Deadline_monotonic;
        }
      ~arrivals:[ ("hi", [ 1 ]); ("lo", [ 0 ]) ]
      m tr ~horizon:40
  in
  let inh = run Rt_sim.Monitor_sim.Inheritance in
  checkb "inheritance deadlocks on crossing sections" true
    inh.Rt_sim.Monitor_sim.deadlocked;
  let bare = run Rt_sim.Monitor_sim.No_protocol in
  checkb "plain monitors deadlock too" true bare.Rt_sim.Monitor_sim.deadlocked

let test_monitor_sim_ceiling_prevents_deadlock () =
  let m, tr = deadlock_fixture () in
  let r =
    Rt_sim.Monitor_sim.simulate
      ~config:
        {
          Rt_sim.Monitor_sim.protocol = Rt_sim.Monitor_sim.Ceiling;
          assignment = Rt_process.Fixed_priority.Deadline_monotonic;
        }
      ~arrivals:[ ("hi", [ 1 ]); ("lo", [ 0 ]) ]
      m tr ~horizon:40
  in
  checkb "no deadlock under PCP" false r.Rt_sim.Monitor_sim.deadlocked;
  checki "both jobs finish" 0
    (List.length
       (List.filter
          (fun (o : Rt_sim.Monitor_sim.job_outcome) -> o.finish = None)
          r.Rt_sim.Monitor_sim.jobs));
  checki "no misses" 0 r.Rt_sim.Monitor_sim.misses

let test_monitor_sim_no_monitors_like_fp () =
  (* Without shared elements the simulation reduces to plain
     fixed-priority: the example avionics weapon chain meets deadlines. *)
  let comm =
    Comm_graph.create ~elements:[ ("x", 1, true); ("y", 2, true) ] ~edges:[]
  in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"cx" ~graph:(Task_graph.singleton 0) ~period:4
            ~deadline:4 ~kind:Timing.Periodic;
          Timing.make ~name:"cy" ~graph:(Task_graph.singleton 1) ~period:8
            ~deadline:8 ~kind:Timing.Periodic;
        ]
  in
  let tr = Rt_process.From_model.translate m in
  let r = Rt_sim.Monitor_sim.simulate m tr ~horizon:16 in
  checki "no misses" 0 r.Rt_sim.Monitor_sim.misses

(* ------------------------------------------------------------------ *)
(* Sensitivity                                                         *)
(* ------------------------------------------------------------------ *)

let test_with_deadline () =
  let m' = Sensitivity.with_deadline example "pz" 20 in
  checki "deadline replaced" 20 (Model.find m' "pz").Timing.deadline;
  checki "others untouched" 10 (Model.find m' "px").Timing.deadline;
  Alcotest.check_raises "unknown constraint" Not_found (fun () ->
      ignore (Sensitivity.with_deadline example "nope" 5))

let test_scaled_time () =
  let m' = Sensitivity.scaled_time example ~num:1 ~den:2 in
  checki "period halved" 5 (Model.find m' "px").Timing.period;
  checki "deadline halved" 10 (Model.find m' "py").Timing.deadline;
  let same = Sensitivity.scaled_time example ~num:3 ~den:3 in
  checki "identity scale" 10 (Model.find same "px").Timing.period

let test_tightest_deadline () =
  match Sensitivity.tightest_deadline example "pz" with
  | None -> Alcotest.fail "example synthesizes at d=15"
  | Some d ->
      checkb "tighter or equal" true (d <= 15);
      (* w(pz) = 3, so no schedule can beat d = 3. *)
      checkb "not below computation time" true (d >= 3);
      (* The reported deadline must actually synthesize. *)
      checkb "witness synthesizes" true
        (match
           Synthesis.synthesize (Sensitivity.with_deadline example "pz" d)
         with
        | Ok _ -> true
        | Error _ -> false)

let test_tightest_deadline_infeasible_base () =
  let comm = Comm_graph.create ~elements:[ ("a", 5, true) ] ~edges:[] in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"c" ~graph:(Task_graph.singleton 0) ~period:10
            ~deadline:3 ~kind:Timing.Asynchronous;
        ]
  in
  checkb "None when the base fails" true
    (Sensitivity.tightest_deadline m "c" = None)

let test_critical_speed () =
  match Sensitivity.critical_speed ~resolution:16 example with
  | None -> Alcotest.fail "example synthesizes unscaled"
  | Some s ->
      checkb "within (0, 1]" true (s > 0.0 && s <= 1.0);
      (* The utilization at scale s must stay at most ~1. *)
      let num = int_of_float (s *. 16.0) in
      let scaled = Sensitivity.scaled_time example ~num ~den:16 in
      checkb "witness synthesizes" true
        (match Synthesis.synthesize scaled with Ok _ -> true | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_summary () =
  let m = example_plan.Synthesis.model_used in
  let report =
    Rt_sim.Runtime.run m example_plan.Synthesis.schedule ~horizon:520
      ~arrivals:[ ("pz", [ 0; 111; 222; 333; 444 ]) ]
  in
  let summaries = Rt_sim.Stats.summarize report in
  checki "three constraints" 3 (List.length summaries);
  let pz =
    List.find
      (fun s -> s.Rt_sim.Stats.constraint_name = "pz")
      summaries
  in
  checki "five invocations" 5 pz.Rt_sim.Stats.invocations;
  checki "all completed" 5 pz.Rt_sim.Stats.completed;
  checki "no misses" 0 pz.Rt_sim.Stats.misses;
  let get = Option.get in
  let min_r = get pz.Rt_sim.Stats.min_response
  and max_r = get pz.Rt_sim.Stats.max_response in
  checkb "bounds ordered" true (min_r <= max_r);
  checkb "mean within bounds" true
    (pz.Rt_sim.Stats.mean_response >= float_of_int min_r
    && pz.Rt_sim.Stats.mean_response <= float_of_int max_r);
  checki "jitter consistent" (max_r - min_r) (get pz.Rt_sim.Stats.jitter);
  let p95 = get pz.Rt_sim.Stats.p95_response
  and p99 = get pz.Rt_sim.Stats.p99_response in
  checkb "percentiles within bounds" true
    (min_r <= p95 && p95 <= p99 && p99 <= max_r);
  (* With five samples the nearest-rank p95 and p99 are both the
     maximum. *)
  checki "p99 of five samples is the max" max_r p99;
  (match Rt_sim.Stats.worst_jitter summaries with
  | Some (_, j) ->
      checkb "worst jitter is the max" true
        (List.for_all
           (fun s ->
             match s.Rt_sim.Stats.jitter with
             | None -> true
             | Some j' -> j' <= j)
           summaries)
  | None -> Alcotest.fail "completed invocations exist");
  (* A constraint that never completes must report absent response
     statistics, not zeros. *)
  let starved =
    {
      Rt_sim.Runtime.invocations =
        [
          {
            Rt_sim.Runtime.constraint_name = "pz";
            arrival = 0;
            completion = None;
            response = None;
            met = false;
          };
        ];
      misses = 1;
      worst_response = [];
    }
  in
  let pz' =
    List.find
      (fun s -> s.Rt_sim.Stats.constraint_name = "pz")
      (Rt_sim.Stats.summarize starved)
  in
  checki "starved completed" 0 pz'.Rt_sim.Stats.completed;
  checkb "starved statistics absent" true
    (pz'.Rt_sim.Stats.min_response = None
    && pz'.Rt_sim.Stats.max_response = None
    && pz'.Rt_sim.Stats.p95_response = None
    && pz'.Rt_sim.Stats.jitter = None)

let test_stats_empty () =
  let m = example_plan.Synthesis.model_used in
  (* No arrivals for pz: its summary must not appear; periodic ones
     do. *)
  let report =
    Rt_sim.Runtime.run m example_plan.Synthesis.schedule ~horizon:260
      ~arrivals:[]
  in
  let summaries = Rt_sim.Stats.summarize report in
  checkb "pz absent without invocations" true
    (not
       (List.exists
          (fun s -> s.Rt_sim.Stats.constraint_name = "pz")
          summaries))

(* ------------------------------------------------------------------ *)
(* Emit_c                                                              *)
(* ------------------------------------------------------------------ *)

let test_emit_identifiers () =
  Alcotest.check Alcotest.string "stage name" "fe_f_s_2"
    (Emit_c.element_identifier "f_s#2");
  Alcotest.check Alcotest.string "plain" "fe_imu"
    (Emit_c.element_identifier "imu")

let test_emit_rejects_unverified () =
  let m = example_plan.Synthesis.model_used in
  let idle = Schedule.of_slots [ Schedule.Idle ] in
  checkb "raises" true
    (try
       ignore (Emit_c.emit m idle);
       false
     with Invalid_argument _ -> true)

let test_emit_compiles_and_replays () =
  (* The real thing: compile the generated C with gcc and check that
     the executed trace equals the schedule. *)
  let m = example_plan.Synthesis.model_used in
  let sched = example_plan.Synthesis.schedule in
  let source = Emit_c.emit m sched in
  let dir = Filename.temp_file "rtsyn_c" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let c_path = Filename.concat dir "sched.c" in
      let exe = Filename.concat dir "sched" in
      let oc = open_out c_path in
      output_string oc source;
      close_out oc;
      let compile =
        Printf.sprintf "cc -std=c99 -Wall -Werror -DRT_TEST_MAIN -o %s %s"
          (Filename.quote exe) (Filename.quote c_path)
      in
      checki "compiles cleanly" 0 (Sys.command compile);
      (* Two full cycles: exercises the round-robin wrap. *)
      let n = 2 * Schedule.length sched in
      let out = Filename.concat dir "trace.txt" in
      checki "runs" 0
        (Sys.command
           (Printf.sprintf "%s %d > %s" (Filename.quote exe) n
              (Filename.quote out)));
      let ic = open_in out in
      let trace =
        List.init n (fun _ -> int_of_string (String.trim (input_line ic)))
      in
      close_in ic;
      List.iteri
        (fun t got ->
          let expected =
            match Schedule.slot sched t with
            | Schedule.Idle -> -1
            | Schedule.Run e -> e
          in
          if got <> expected then
            Alcotest.failf "slot %d: emitted code ran %d, schedule says %d" t
              got expected)
        trace)

(* ------------------------------------------------------------------ *)
(* Synthesis merge fallback                                            *)
(* ------------------------------------------------------------------ *)

let test_merge_fallback () =
  (* Merging c1 (heavy, loose) with c2 (tiny, tight) would tighten the
     merged deadline to 2 and fail; the fallback must still synthesize
     the unmerged model. *)
  let comm =
    Comm_graph.create ~elements:[ ("heavy", 5, true); ("tiny", 1, true) ] ~edges:[]
  in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"c1" ~graph:(Task_graph.singleton 0) ~period:10
            ~deadline:10 ~kind:Timing.Periodic;
          Timing.make ~name:"c2" ~graph:(Task_graph.singleton 1) ~period:10
            ~deadline:2 ~kind:Timing.Periodic;
        ]
  in
  (* Sanity: the merged model alone is infeasible. *)
  let merged, rep = Merge.apply m in
  checkb "merge happened" true (rep.Merge.merged_groups <> []);
  (match Synthesis.synthesize ~merge:false merged with
  | Ok _ -> Alcotest.fail "merged variant should be infeasible (w=6 > d=2)"
  | Error _ -> ());
  match Synthesis.synthesize m with
  | Ok plan ->
      checkb "fallback dropped the merge" true
        (match plan.Synthesis.merge_report with
        | None -> true
        | Some r -> r.Merge.merged_groups = [])
  | Error e -> Alcotest.failf "fallback failed: %s" e.Synthesis.message

(* ------------------------------------------------------------------ *)
(* Printer smoke tests: user-facing renderings keep their key content  *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_printers_smoke () =
  let m = example_plan.Synthesis.model_used in
  let plan_text =
    Format.asprintf "%a" (Synthesis.pp_plan m) example_plan
  in
  checkb "plan shows hyperperiod" true (contains plan_text "hyperperiod: 260");
  checkb "plan shows polling" true (contains plan_text "polling: pz");
  checkb "plan shows verdicts" true (contains plan_text "OK");
  let model_text = Format.asprintf "%a" Model.pp m in
  checkb "model lists constraints" true (contains model_text "pz(asynchronous");
  let err_text =
    Format.asprintf "%a" Synthesis.pp_error
      { Synthesis.stage = "edf"; message = "boom" }
  in
  checkb "error shows stage" true (contains err_text "[edf] boom");
  let sched_text = Format.asprintf "%a" Schedule.pp example_plan.Synthesis.schedule in
  checkb "schedule pp non-empty" true (String.length sched_text > 10);
  let offset_c =
    Timing.with_offset
      (Timing.make ~name:"o" ~graph:(Task_graph.singleton 0) ~period:8
         ~deadline:4 ~kind:Timing.Periodic)
      2
  in
  checkb "timing pp shows offset" true
    (contains (Format.asprintf "%a" Timing.pp offset_c) "o=2")

let () =
  Alcotest.run "rt_core-extensions"
    [
      ( "optimize",
        [
          Alcotest.test_case "trim keeps feasibility" `Quick
            test_trim_idle_keeps_feasibility;
          Alcotest.test_case "trim removes slack" `Quick
            test_trim_idle_removes_pure_slack;
          Alcotest.test_case "trim rejects bad input" `Quick
            test_trim_idle_rejects_infeasible_input;
          Alcotest.test_case "canonical rotation" `Quick
            test_canonical_rotation;
          Alcotest.test_case "slack profile" `Quick test_slack_profile;
          Alcotest.test_case "fundamental period" `Quick
            test_fundamental_period;
        ] );
      ( "admission",
        [
          Alcotest.test_case "impossible: weight" `Quick
            test_admission_impossible_weight;
          Alcotest.test_case "impossible: rate" `Quick
            test_admission_impossible_rate;
          Alcotest.test_case "guaranteed: theorem3" `Quick
            test_admission_guaranteed_theorem3;
          Alcotest.test_case "guaranteed: edf" `Quick
            test_admission_guaranteed_edf;
          Alcotest.test_case "inconclusive gap" `Quick
            test_admission_inconclusive;
          Alcotest.test_case "never contradicts synthesis" `Slow
            test_admission_never_contradicts_synthesis;
          Alcotest.test_case "demand bound" `Quick test_demand_bound;
          Alcotest.test_case "rate bound kinds" `Quick test_rate_bound_kinds;
          Alcotest.test_case "merged certificate" `Quick
            test_admission_merged_route;
          Alcotest.test_case "offset-aware edf certificate" `Quick
            test_admission_edf_with_offsets;
          Alcotest.test_case "schedule of_string" `Quick
            test_schedule_of_string_roundtrip;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "render" `Quick test_gantt_render;
          Alcotest.test_case "omits unused" `Quick test_gantt_omits_unused;
          Alcotest.test_case "chunks" `Quick test_gantt_chunks;
        ] );
      ( "monitor_sim",
        [
          Alcotest.test_case "inheritance bounds blocking" `Quick
            test_monitor_sim_inheritance_bounds_blocking;
          Alcotest.test_case "mutual exclusion" `Quick
            test_monitor_sim_mutual_exclusion;
          Alcotest.test_case "plain fixed-priority" `Quick
            test_monitor_sim_no_monitors_like_fp;
          Alcotest.test_case "deadlock detected" `Quick
            test_monitor_sim_deadlock_detected;
          Alcotest.test_case "ceiling prevents deadlock" `Quick
            test_monitor_sim_ceiling_prevents_deadlock;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "with_deadline" `Quick test_with_deadline;
          Alcotest.test_case "scaled_time" `Quick test_scaled_time;
          Alcotest.test_case "tightest deadline" `Slow test_tightest_deadline;
          Alcotest.test_case "infeasible base" `Quick
            test_tightest_deadline_infeasible_base;
          Alcotest.test_case "critical speed" `Slow test_critical_speed;
          Alcotest.test_case "scale clamps offset" `Quick
            test_sensitivity_scale_clamps_offset;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty" `Quick test_stats_empty;
        ] );
      ( "emit-c",
        [
          Alcotest.test_case "identifiers" `Quick test_emit_identifiers;
          Alcotest.test_case "rejects unverified" `Quick
            test_emit_rejects_unverified;
          Alcotest.test_case "compiles and replays" `Quick
            test_emit_compiles_and_replays;
        ] );
      ( "synthesis-fallback",
        [ Alcotest.test_case "merge fallback" `Quick test_merge_fallback ] );
      ( "printers",
        [ Alcotest.test_case "smoke" `Quick test_printers_smoke ] );
    ]
