(* Unit and property tests for the rt_graph substrate: Digraph, Intmath
   and Prng. *)

open Rt_graph

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Intmath                                                             *)
(* ------------------------------------------------------------------ *)

let test_gcd () =
  checki "gcd 12 18" 6 (Intmath.gcd 12 18);
  checki "gcd 0 5" 5 (Intmath.gcd 0 5);
  checki "gcd 5 0" 5 (Intmath.gcd 5 0);
  checki "gcd 0 0" 0 (Intmath.gcd 0 0);
  checki "gcd 7 13" 1 (Intmath.gcd 7 13);
  checki "gcd negative" 6 (Intmath.gcd (-12) 18)

let test_lcm () =
  checki "lcm 4 6" 12 (Intmath.lcm 4 6);
  checki "lcm 1 1" 1 (Intmath.lcm 1 1);
  checki "lcm 0 5" 0 (Intmath.lcm 0 5);
  checki "lcm_list" 60 (Intmath.lcm_list [ 4; 6; 10 ]);
  checki "lcm_list empty" 1 (Intmath.lcm_list []);
  Alcotest.check_raises "lcm overflow" Intmath.Overflow (fun () ->
      ignore (Intmath.lcm max_int (max_int - 1)))

let test_ceil_div () =
  checki "ceil_div exact" 3 (Intmath.ceil_div 9 3);
  checki "ceil_div round up" 4 (Intmath.ceil_div 10 3);
  checki "ceil_div zero" 0 (Intmath.ceil_div 0 5)

let test_pow2_floor () =
  checki "pow2 1" 1 (Intmath.pow2_floor 1);
  checki "pow2 2" 2 (Intmath.pow2_floor 2);
  checki "pow2 3" 2 (Intmath.pow2_floor 3);
  checki "pow2 17" 16 (Intmath.pow2_floor 17);
  checki "pow2 1024" 1024 (Intmath.pow2_floor 1024)

let test_gcd_list () =
  checki "gcd_list" 4 (Intmath.gcd_list [ 12; 8; 20 ]);
  checki "gcd_list empty" 0 (Intmath.gcd_list [])

let test_sum () =
  checki "sum" 10 (Intmath.sum [ 1; 2; 3; 4 ]);
  checki "sum empty" 0 (Intmath.sum []);
  Alcotest.check_raises "sum overflow" Intmath.Overflow (fun () ->
      ignore (Intmath.sum [ max_int; 1 ]))

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  let sa = List.init 20 (fun _ -> Prng.next a) in
  let sb = List.init 20 (fun _ -> Prng.next b) in
  checkb "same seed, same stream" true (sa = sb);
  let c = Prng.create 8 in
  let sc = List.init 20 (fun _ -> Prng.next c) in
  checkb "different seed, different stream" false (sa = sc)

let test_prng_ranges () =
  let g = Prng.create 99 in
  for _ = 1 to 1000 do
    let x = Prng.int g 10 in
    checkb "int in range" true (x >= 0 && x < 10);
    let y = Prng.int_in g 5 9 in
    checkb "int_in in range" true (y >= 5 && y <= 9);
    let f = Prng.float g 2.5 in
    checkb "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_prng_shuffle_permutes () =
  let g = Prng.create 3 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  checkb "shuffle is a permutation" true (sorted = Array.init 50 Fun.id)

let test_prng_pick () =
  let g = Prng.create 21 in
  for _ = 1 to 50 do
    checkb "pick returns a member" true (List.mem (Prng.pick g [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done;
  checkb "empty pick rejected" true
    (try
       ignore (Prng.pick g ([] : int list));
       false
     with Invalid_argument _ -> true)

let test_prng_copy_and_split () =
  let g = Prng.create 11 in
  ignore (Prng.next g);
  let h = Prng.copy g in
  checki "copy continues identically" (Prng.next g) (Prng.next h);
  let g2 = Prng.create 11 in
  let child = Prng.split g2 in
  checkb "split stream differs from parent continuation" true
    (Prng.next child <> Prng.next g2)

(* ------------------------------------------------------------------ *)
(* Digraph basics                                                      *)
(* ------------------------------------------------------------------ *)

let diamond = Digraph.create ~n:4 ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_create_and_degrees () =
  checki "nodes" 4 (Digraph.n_nodes diamond);
  checki "edges" 4 (Digraph.n_edges diamond);
  check (Alcotest.list Alcotest.int) "succ 0" [ 1; 2 ] (Digraph.succ diamond 0);
  check (Alcotest.list Alcotest.int) "pred 3" [ 1; 2 ] (Digraph.pred diamond 3);
  checki "out_degree 0" 2 (Digraph.out_degree diamond 0);
  checki "in_degree 3" 2 (Digraph.in_degree diamond 3);
  checkb "mem_edge" true (Digraph.mem_edge diamond 0 1);
  checkb "not mem_edge" false (Digraph.mem_edge diamond 1 0)

let test_create_rejects_bad_nodes () =
  Alcotest.check_raises "edge endpoint out of range"
    (Invalid_argument "Digraph: node 5 out of range [0,3)") (fun () ->
      ignore (Digraph.create ~n:3 ~edges:[ (0, 5) ]))

let test_parallel_edges_collapse () =
  let g = Digraph.create ~n:2 ~edges:[ (0, 1); (0, 1); (0, 1) ] in
  checki "duplicates collapse" 1 (Digraph.n_edges g)

let test_add_remove () =
  let g = Digraph.empty 3 in
  let g = Digraph.add_edge g 0 1 in
  let g = Digraph.add_edge g 1 2 in
  checki "2 edges" 2 (Digraph.n_edges g);
  let g = Digraph.remove_edge g 0 1 in
  checki "1 edge" 1 (Digraph.n_edges g);
  checkb "removed" false (Digraph.mem_edge g 0 1)

let test_sources_sinks () =
  check (Alcotest.list Alcotest.int) "sources" [ 0 ] (Digraph.sources diamond);
  check (Alcotest.list Alcotest.int) "sinks" [ 3 ] (Digraph.sinks diamond)

let test_acyclicity () =
  checkb "diamond acyclic" true (Digraph.is_acyclic diamond);
  let cyc = Digraph.create ~n:3 ~edges:[ (0, 1); (1, 2); (2, 0) ] in
  checkb "cycle detected" false (Digraph.is_acyclic cyc);
  let self = Digraph.create ~n:1 ~edges:[ (0, 0) ] in
  checkb "self-loop is a cycle" false (Digraph.is_acyclic self)

let test_topological_sort () =
  (match Digraph.topological_sort diamond with
  | Some order ->
      check (Alcotest.list Alcotest.int) "deterministic order" [ 0; 1; 2; 3 ]
        order
  | None -> Alcotest.fail "diamond should sort");
  let cyc = Digraph.create ~n:2 ~edges:[ (0, 1); (1, 0) ] in
  checkb "cyclic has no sort" true (Digraph.topological_sort cyc = None)

let test_reachability () =
  checkb "0 reaches 3" true (Digraph.reaches diamond 0 3);
  checkb "3 does not reach 0" false (Digraph.reaches diamond 3 0);
  checkb "node reaches itself" true (Digraph.reaches diamond 1 1)

let test_transitive_closure () =
  let tc = Digraph.transitive_closure diamond in
  checkb "closure adds 0->3" true (Digraph.mem_edge tc 0 3);
  checkb "closure keeps 0->1" true (Digraph.mem_edge tc 0 1);
  checkb "closure has no 0->0" false (Digraph.mem_edge tc 0 0);
  let cyc = Digraph.create ~n:2 ~edges:[ (0, 1); (1, 0) ] in
  let tcc = Digraph.transitive_closure cyc in
  checkb "cycle closure has self-edges" true (Digraph.mem_edge tcc 0 0)

let test_transitive_reduction () =
  let g = Digraph.create ~n:3 ~edges:[ (0, 1); (1, 2); (0, 2) ] in
  let tr = Digraph.transitive_reduction g in
  checkb "redundant edge removed" false (Digraph.mem_edge tr 0 2);
  checkb "chain kept" true
    (Digraph.mem_edge tr 0 1 && Digraph.mem_edge tr 1 2);
  Alcotest.check_raises "cyclic reduction rejected"
    (Invalid_argument "Digraph.transitive_reduction: cyclic graph") (fun () ->
      ignore
        (Digraph.transitive_reduction
           (Digraph.create ~n:2 ~edges:[ (0, 1); (1, 0) ])))

let test_longest_path () =
  checki "unit weights critical path" 3
    (Digraph.longest_path diamond ~weight:(fun _ -> 1));
  let w = function 0 -> 1 | 1 -> 5 | 2 -> 1 | _ -> 2 in
  checki "weighted critical path" 8 (Digraph.longest_path diamond ~weight:w);
  checki "empty graph" 0
    (Digraph.longest_path (Digraph.empty 0) ~weight:(fun _ -> 1))

let test_induced_subgraph () =
  let sub, mapping = Digraph.induced_subgraph diamond ~keep:(fun v -> v <> 1) in
  checki "3 nodes left" 3 (Digraph.n_nodes sub);
  checki "edges kept" 2 (Digraph.n_edges sub);
  checkb "mapping is original ids" true (mapping = [| 0; 2; 3 |])

let test_union_and_map () =
  let a = Digraph.create ~n:3 ~edges:[ (0, 1) ] in
  let b = Digraph.create ~n:3 ~edges:[ (1, 2) ] in
  let u = Digraph.union a b in
  checki "union edges" 2 (Digraph.n_edges u);
  let img = Digraph.map_nodes u ~f:(fun v -> v mod 2) ~n:2 in
  checkb "mapped has 0->1" true (Digraph.mem_edge img 0 1);
  checkb "mapped has 1->0" true (Digraph.mem_edge img 1 0)

let test_is_chain () =
  checkb "diamond not chain" false (Digraph.is_chain diamond);
  checkb "path is chain" true
    (Digraph.is_chain (Digraph.create ~n:3 ~edges:[ (0, 1); (1, 2) ]));
  checkb "singleton is chain" true (Digraph.is_chain (Digraph.empty 1));
  checkb "empty not chain" false (Digraph.is_chain (Digraph.empty 0));
  checkb "two components not chain" false (Digraph.is_chain (Digraph.empty 2))

let test_scc () =
  (* Two 2-cycles bridged by an edge, plus an isolated node. *)
  let g =
    Digraph.create ~n:5
      ~edges:[ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ]
  in
  let sccs = Digraph.strongly_connected_components g in
  checkb "partition covers all nodes" true
    (List.sort Int.compare (List.concat sccs) = [ 0; 1; 2; 3; 4 ]);
  checkb "the two cycles are components" true
    (List.mem [ 0; 1 ] sccs && List.mem [ 2; 3 ] sccs);
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "feedback components"
    [ [ 0; 1 ]; [ 2; 3 ] ]
    (List.sort compare (Digraph.feedback_components g));
  (* Self-loop counts as feedback; plain node does not. *)
  let s = Digraph.create ~n:2 ~edges:[ (0, 0) ] in
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "self-loop feedback" [ [ 0 ] ] (Digraph.feedback_components s)

let test_scc_reverse_topological () =
  let g = Digraph.create ~n:4 ~edges:[ (0, 1); (1, 2); (2, 1); (2, 3) ] in
  let sccs = Digraph.strongly_connected_components g in
  (* Condensation 0 -> {1,2} -> 3; reverse topological order puts 3
     first and 0 last. *)
  checkb "reverse topological order" true
    (sccs = [ [ 3 ]; [ 1; 2 ]; [ 0 ] ])

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

let test_fold_edges () =
  let total =
    Digraph.fold_edges diamond ~init:0 ~f:(fun acc u v -> acc + u + v)
  in
  (* Edges (0,1)(0,2)(1,3)(2,3): sum = 1+2+4+5 = 12. *)
  checki "fold over edges" 12 total

let test_to_dot () =
  let dot = Digraph.to_dot ~name:"d" diamond in
  checkb "mentions edge" true (contains_substring dot "n0 -> n1")

(* ------------------------------------------------------------------ *)
(* Digraph properties (qcheck)                                         *)
(* ------------------------------------------------------------------ *)

let arbitrary_dag =
  (* Random DAG as (n, forward edge list). *)
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) edges)))
    QCheck.Gen.(
      sized_size (int_range 1 8) (fun n ->
          let pairs =
            List.concat
              (List.init n (fun i ->
                   List.init (n - i - 1) (fun k -> (i, i + k + 1))))
          in
          flatten_l (List.map (fun _ -> bool) pairs) >>= fun keep ->
          let edges = List.filteri (fun i _ -> List.nth keep i) pairs in
          return (n, edges)))

let prop_topo_sort_valid =
  QCheck.Test.make ~name:"topological sort linearizes every edge" ~count:200
    arbitrary_dag (fun (n, edges) ->
      let g = Digraph.create ~n ~edges in
      match Digraph.topological_sort g with
      | None -> false (* forward edges are always acyclic *)
      | Some order ->
          let pos = Array.make n 0 in
          List.iteri (fun i v -> pos.(v) <- i) order;
          List.length order = n
          && List.for_all (fun (u, v) -> pos.(u) < pos.(v)) edges)

let prop_reduction_preserves_reachability =
  QCheck.Test.make ~name:"transitive reduction preserves reachability"
    ~count:100 arbitrary_dag (fun (n, edges) ->
      let g = Digraph.create ~n ~edges in
      let tr = Digraph.transitive_reduction g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Digraph.reaches g u v <> Digraph.reaches tr u v then ok := false
        done
      done;
      !ok && Digraph.n_edges tr <= Digraph.n_edges g)

let prop_scc_consistent_with_acyclicity =
  QCheck.Test.make ~name:"acyclic iff every SCC is a trivial singleton"
    ~count:200 arbitrary_dag (fun (n, edges) ->
      (* Turn a random DAG into a possibly-cyclic graph by adding each
         reversed edge with the original (deterministic derivation). *)
      let maybe_cyclic =
        Digraph.create ~n
          ~edges:
            (edges
            @ List.filteri (fun i _ -> i mod 3 = 0)
                (List.map (fun (u, v) -> (v, u)) edges))
      in
      let sccs = Digraph.strongly_connected_components maybe_cyclic in
      let trivial =
        List.for_all
          (fun c ->
            match c with
            | [ v ] -> not (Digraph.mem_edge maybe_cyclic v v)
            | _ -> false)
          sccs
      in
      trivial = Digraph.is_acyclic maybe_cyclic)

let prop_closure_is_reachability =
  QCheck.Test.make ~name:"transitive closure equals non-empty-path relation"
    ~count:100 arbitrary_dag (fun (n, edges) ->
      let g = Digraph.create ~n ~edges in
      let tc = Digraph.transitive_closure g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let non_empty_path =
            List.exists (fun x -> Digraph.reaches g x v) (Digraph.succ g u)
          in
          if Digraph.mem_edge tc u v <> non_empty_path then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "rt_graph"
    [
      ( "intmath",
        [
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "lcm" `Quick test_lcm;
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "pow2_floor" `Quick test_pow2_floor;
          Alcotest.test_case "sum" `Quick test_sum;
          Alcotest.test_case "gcd_list" `Quick test_gcd_list;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "copy and split" `Quick test_prng_copy_and_split;
          Alcotest.test_case "pick" `Quick test_prng_pick;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "create/degrees" `Quick test_create_and_degrees;
          Alcotest.test_case "bad nodes rejected" `Quick
            test_create_rejects_bad_nodes;
          Alcotest.test_case "parallel edges collapse" `Quick
            test_parallel_edges_collapse;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "sources/sinks" `Quick test_sources_sinks;
          Alcotest.test_case "acyclicity" `Quick test_acyclicity;
          Alcotest.test_case "topological sort" `Quick test_topological_sort;
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "transitive closure" `Quick
            test_transitive_closure;
          Alcotest.test_case "transitive reduction" `Quick
            test_transitive_reduction;
          Alcotest.test_case "longest path" `Quick test_longest_path;
          Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph;
          Alcotest.test_case "union/map" `Quick test_union_and_map;
          Alcotest.test_case "is_chain" `Quick test_is_chain;
          Alcotest.test_case "scc" `Quick test_scc;
          Alcotest.test_case "scc order" `Quick test_scc_reverse_topological;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
          Alcotest.test_case "fold_edges" `Quick test_fold_edges;
        ] );
      ( "digraph-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_topo_sort_valid;
            prop_reduction_preserves_reachability;
            prop_closure_is_reachability;
            prop_scc_consistent_with_acyclicity;
          ] );
    ]
