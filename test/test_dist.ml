(* Tests for the failure-aware multiprocessor runtime: heartbeat
   detection, bus-fault admission (the ARQ bound), contingency
   synthesis, and the lockstep distributed replay with failover. *)

open Rt_core
module Pt = Rt_multiproc.Partition
module Ms = Rt_multiproc.Msched
module Ns = Rt_multiproc.Netsched
module Cg = Rt_multiproc.Contingency
module Hb = Rt_sim.Heartbeat
module Nf = Rt_sim.Net_fault
module Dr = Rt_sim.Dist_runtime

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let example = Rt_workload.Suite.control_system Rt_workload.Suite.default_params

(* A fast heartbeat so reconfiguration bounds stay small in tests. *)
let fast_hb = { Hb.hb_period = 2; miss_threshold = 1 }

let nominal_3p =
  match Ms.synthesize ~n_procs:3 ~msg_cost:1 example with
  | Ok r -> r
  | Error e -> Alcotest.failf "fixture synthesis failed: %s" e

let table_3p =
  match
    Cg.synthesize ~detect_bound:(Hb.detection_bound fast_hb) example nominal_3p
  with
  | Ok t -> t
  | Error e -> Alcotest.failf "fixture contingency failed: %s" e

(* ------------------------------------------------------------------ *)
(* Heartbeat                                                           *)
(* ------------------------------------------------------------------ *)

let test_heartbeat_bound () =
  checki "default bound" 9 (Hb.detection_bound Hb.default);
  checki "fast bound" 1 (Hb.detection_bound fast_hb);
  (* The detection latency is within the bound for a crash at any
     phase of the heartbeat period. *)
  let config = { Hb.hb_period = 3; miss_threshold = 2 } in
  let bound = Hb.detection_bound config in
  checki "bound formula" 5 bound;
  for crash = 1 to 12 do
    let st = Hb.make config ~n_procs:2 in
    let detected = ref None in
    for t = 0 to crash + bound do
      List.iter
        (function
          | Hb.Died 1 when !detected = None -> detected := Some t
          | _ -> ())
        (Hb.observe st ~t ~alive:(fun p -> p = 0 || t < crash))
    done;
    match !detected with
    | None -> Alcotest.failf "crash at %d never detected within the bound" crash
    | Some t ->
        checkb
          (Printf.sprintf "crash at %d detected at %d within bound %d" crash t
             bound)
          true
          (t - crash <= bound && t >= crash)
  done

let test_heartbeat_recovery () =
  let st = Hb.make fast_hb ~n_procs:1 in
  let log = ref [] in
  for t = 0 to 20 do
    log :=
      !log
      @ Hb.observe st ~t ~alive:(fun _ -> t < 3 || t >= 9)
  done;
  match !log with
  | [ Hb.Died 0; Hb.Recovered 0 ] -> ()
  | _ -> Alcotest.fail "expected exactly one death and one recovery"

(* ------------------------------------------------------------------ *)
(* Net_fault: the ARQ admission bound                                  *)
(* ------------------------------------------------------------------ *)

let arq_items =
  [
    { Ns.item_name = "m1"; release = 0; abs_deadline = 4; cost = 1 };
    { Ns.item_name = "m2"; release = 4; abs_deadline = 8; cost = 1 };
  ]

let test_arq_bound_tight () =
  (* The instance is feasible at slack k=2 but not k=3. *)
  checkb "tolerance" true (Ns.arq_tolerance ~horizon:8 arq_items = Some 3);
  let k = 2 in
  (match Ns.schedule_arq ~horizon:8 ~k arq_items with
  | Ok _ -> ()
  | Error ms -> Alcotest.failf "k=%d must fit: %s" k (Ns.misses_to_string ms));
  (* <= k faults per item window: admitted, and the simulation misses
     nothing. *)
  let ok_plan =
    [
      { Nf.slot = 0; kind = Nf.Lost };
      { Nf.slot = 1; kind = Nf.Corrupted };
      { Nf.slot = 5; kind = Nf.Lost };
    ]
  in
  (match Nf.admit ~k arq_items ok_plan with
  | Ok () -> ()
  | Error es -> Alcotest.failf "admissible plan rejected: %s" (List.hd es));
  let outcome = Nf.simulate ~horizon:8 arq_items ok_plan in
  checkb "no miss under admissible faults" true (outcome.Nf.missed = []);
  (* Slots 0 and 1 hit m1's transmissions; slot 5 finds the bus idle
     (m2 already delivered at 4) and costs nothing. *)
  checki "retransmissions counted" 2 outcome.Nf.retransmissions;
  (* k+1 faults in one window: the analyzer reports the violation, and
     the simulation indeed misses. *)
  let bad_plan =
    [
      { Nf.slot = 0; kind = Nf.Lost };
      { Nf.slot = 1; kind = Nf.Lost };
      { Nf.slot = 2; kind = Nf.Corrupted };
    ]
  in
  (match Nf.admit ~k arq_items bad_plan with
  | Error [ e ] ->
      checkb "names the item and window" true
        (String.length e > 0 && String.sub e 0 2 = "m1")
  | Error _ -> Alcotest.fail "exactly one violation expected"
  | Ok () -> Alcotest.fail "k+1 faults in m1's window must be rejected");
  (* Saturating m1's whole window shows the rejected hazard is real. *)
  let saturating =
    List.init 4 (fun slot -> { Nf.slot; kind = Nf.Lost })
  in
  let outcome = Nf.simulate ~horizon:8 arq_items saturating in
  checkb "the violation is real: m1 misses" true
    (List.exists (fun (m : Ns.miss) -> m.missed = "m1") outcome.Nf.missed)

let test_arq_simulation_matches_admission () =
  (* Property: on instances feasible at slack k, every admitted random
     plan yields a miss-free simulation. *)
  let g = Rt_graph.Prng.create 4242 in
  let checked = ref 0 in
  for _ = 1 to 200 do
    let horizon = 10 + Rt_graph.Prng.int g 10 in
    let n = 1 + Rt_graph.Prng.int g 3 in
    let items =
      List.init n (fun i ->
          let release = Rt_graph.Prng.int g (horizon - 6) in
          {
            Ns.item_name = Printf.sprintf "m%d" i;
            release;
            abs_deadline = release + 5 + Rt_graph.Prng.int g (horizon - release - 5);
            cost = 1 + Rt_graph.Prng.int g 2;
          })
    in
    let k = 1 + Rt_graph.Prng.int g 2 in
    match Ns.schedule_arq ~horizon ~k items with
    | Error _ -> ()
    | Ok _ -> (
        let plan = Nf.random_plan g ~horizon ~loss_rate:0.15 in
        match Nf.admit ~k items plan with
        | Error _ -> ()
        | Ok () ->
            incr checked;
            let outcome = Nf.simulate ~horizon items plan in
            checkb "admitted plan cannot cause a miss" true
              (outcome.Nf.missed = []))
  done;
  checkb "property exercised" true (!checked > 20)

(* ------------------------------------------------------------------ *)
(* Contingency                                                         *)
(* ------------------------------------------------------------------ *)

let test_contingency_scenarios_verified () =
  checki "one scenario per processor" 3 (Array.length table_3p.Cg.scenarios);
  Array.iteri
    (fun dead -> function
      | Error e -> Alcotest.failf "crash p%d infeasible: %s" dead e
      | Ok s ->
          checki "covers its processor" dead s.Cg.dead;
          checkb "full service" true (s.Cg.threshold = None);
          (* The dead processor's table is empty and the system still
             window-verifies. *)
          checki "dead processor idle" 0
            (Schedule.busy_slots
               s.Cg.result.Ms.processor_schedules.(dead));
          (match Ms.verify example s.Cg.result with
          | Ok () -> ()
          | Error es ->
              Alcotest.failf "scenario p%d fails verification: %s" dead
                (String.concat "; " es));
          (* Survivors keep their nominal placement. *)
          Array.iteri
            (fun e proc ->
              if proc <> dead then
                checki "surviving assignment kept" proc
                  s.Cg.result.Ms.partition.Pt.assignment.(e))
            nominal_3p.Ms.partition.Pt.assignment)
    table_3p.Cg.scenarios

let test_contingency_bound_accounting () =
  checki "reconfig = detect + swap + migration"
    (table_3p.Cg.detect_bound + 1 + table_3p.Cg.migration)
    table_3p.Cg.reconfig_bound;
  (* px's measured slack under the nominal table is 1 slot (response 9,
     deadline 10), so the fixture's reconfiguration bound of 2 is
     honestly rejected for in-flight invocations... *)
  (match Cg.admits_reconfiguration example table_3p with
  | Ok () -> Alcotest.fail "a 2-slot reconfiguration cannot fit px's 1-slot slack"
  | Error es ->
      checkb "px named in every violation" true
        (List.exists
           (fun e ->
             (* "crash of processor _: px response 9 + reconfiguration 2
                exceeds deadline 10" *)
             let has_sub sub =
               let n = String.length sub and m = String.length e in
               let rec go i = i + n <= m && (String.sub e i n = sub || go (i + 1)) in
               go 0
             in
             has_sub "px" && has_sub "response 9" && has_sub "deadline 10")
           es));
  (* ...while a 1-slot bound (instant detection, no migration) fits
     every constraint's slack: px 9/10, py 14/20, pz within its polling
     window. *)
  match Cg.synthesize ~detect_bound:0 example nominal_3p with
  | Error e -> Alcotest.failf "table: %s" e
  | Ok tight -> (
      checki "one-slot bound" 1 tight.Cg.reconfig_bound;
      match Cg.admits_reconfiguration example tight with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "a 1-slot reconfiguration must fit: %s"
            (String.concat "; " es))

let test_contingency_degrades () =
  (* Utilization 1.5 fits two processors but not one survivor; with a
     criticality assignment the scenario degrades instead of failing. *)
  let comm =
    Comm_graph.create ~elements:[ ("a", 3, true); ("b", 3, true) ] ~edges:[]
  in
  let mk name elem =
    Timing.make ~name ~graph:(Task_graph.singleton elem) ~period:4 ~deadline:4
      ~kind:Timing.Periodic
  in
  let m = Model.make ~comm ~constraints:[ mk "ca" 0; mk "cb" 1 ] in
  let crit =
    match Criticality.make m [ ("ca", Criticality.High); ("cb", Criticality.Low) ]
    with
    | Ok a -> a
    | Error es -> Alcotest.failf "criticality: %s" (String.concat "; " es)
  in
  let nominal =
    match Ms.synthesize ~n_procs:2 m with
    | Ok r -> r
    | Error e -> Alcotest.failf "nominal: %s" e
  in
  (* Without criticality, every crash is infeasible. *)
  (match Cg.synthesize ~detect_bound:1 m nominal with
  | Ok t ->
      Array.iter
        (function
          | Ok _ -> Alcotest.fail "1.5 utilization cannot fit one survivor"
          | Error _ -> ())
        t.Cg.scenarios
  | Error e -> Alcotest.failf "table: %s" e);
  (* With criticality, both scenarios degrade: the Low constraint is
     shed, the High one keeps full service. *)
  match Cg.synthesize ~criticality:crit ~detect_bound:1 m nominal with
  | Error e -> Alcotest.failf "table: %s" e
  | Ok t ->
      checki "both scenarios feasible" 2 (List.length (Cg.feasible_scenarios t));
      List.iter
        (fun s ->
          checkb "degraded" true (s.Cg.threshold = Some Criticality.Medium);
          checkb "cb shed" true (s.Cg.dropped = [ "cb" ]);
          checki "one plan retained" 1 (List.length s.Cg.result.Ms.plans))
        (Cg.feasible_scenarios t)

let test_contingency_deterministic () =
  (* Same inputs, slot-identical tables. *)
  let again =
    match
      Cg.synthesize ~detect_bound:(Hb.detection_bound fast_hb) example
        nominal_3p
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "resynthesis: %s" e
  in
  Array.iteri
    (fun i -> function
      | Ok s -> (
          match table_3p.Cg.scenarios.(i) with
          | Ok s0 ->
              checkb "identical processor tables" true
                (Array.for_all2 Schedule.equal
                   s.Cg.result.Ms.processor_schedules
                   s0.Cg.result.Ms.processor_schedules);
              checkb "identical bus" true
                (s.Cg.result.Ms.bus = s0.Cg.result.Ms.bus)
          | Error _ -> Alcotest.fail "feasibility flipped")
      | Error _ -> Alcotest.fail "scenario became infeasible")
    again.Cg.scenarios

(* ------------------------------------------------------------------ *)
(* Dist_runtime                                                        *)
(* ------------------------------------------------------------------ *)

let test_dist_fault_free () =
  let r = Dr.run ~heartbeat:fast_hb ~horizon:80 example table_3p in
  checki "no misses" 0 r.Dr.misses;
  checki "no shedding" 0 r.Dr.shed;
  checki "no switches" 0 r.Dr.config_switches;
  checkb "stays nominal" true (r.Dr.final_config = Dr.Nominal);
  checkb "invocations happened" true (List.length r.Dr.invocations > 10)

let test_dist_zero_hard_misses_after_bound () =
  (* The acceptance property: for a crash at ANY slot of the first
     hyperperiod, every invocation arriving at or after
     crash + reconfig_bound meets its deadline under failover. *)
  let hyper = nominal_3p.Ms.hyperperiod in
  let bound = table_3p.Cg.reconfig_bound in
  for crash = 0 to hyper - 1 do
    let r =
      Dr.run ~heartbeat:fast_hb
        ~crashes:[ { Dr.proc = 1; at = crash; return_at = None } ]
        ~horizon:(2 * hyper) example table_3p
    in
    checkb "failover happened" true
      (List.exists
         (function Dr.Failover_complete _ -> true | _ -> false)
         r.Dr.events);
    List.iter
      (fun (i : Dr.invocation) ->
        if i.Dr.arrival >= crash + bound then begin
          checkb
            (Printf.sprintf
               "crash@%d: %s arriving at %d (>= crash+%d) not shed" crash
               i.Dr.constraint_name i.Dr.arrival bound)
            false i.Dr.shed;
          checkb
            (Printf.sprintf "crash@%d: %s arriving at %d (>= crash+%d) met"
               crash i.Dr.constraint_name i.Dr.arrival bound)
            true i.Dr.met
        end)
      r.Dr.invocations
  done

let test_dist_detection_within_bound () =
  let hyper = nominal_3p.Ms.hyperperiod in
  for crash = 0 to hyper - 1 do
    let r =
      Dr.run ~heartbeat:fast_hb
        ~crashes:[ { Dr.proc = 0; at = crash; return_at = None } ]
        ~horizon:(2 * hyper) example table_3p
    in
    List.iter
      (function
        | Dr.Detected { latency; _ } ->
            checkb "latency within the analyzed bound" true
              (latency <= r.Dr.detection_bound)
        | _ -> ())
      r.Dr.events
  done

let test_dist_no_failover_misses () =
  (* Without failover the dead processor's work is simply lost. *)
  let r =
    Dr.run ~heartbeat:fast_hb ~policy:Dr.No_failover
      ~crashes:[ { Dr.proc = 1; at = 5; return_at = None } ]
      ~horizon:80 example table_3p
  in
  checki "no switches" 0 r.Dr.config_switches;
  checkb "misses accumulate" true (r.Dr.misses > 0)

let test_dist_readmission () =
  (* The processor returns; once its heartbeats resume the nominal
     table is re-admitted and service is clean afterwards. *)
  let r =
    Dr.run ~heartbeat:fast_hb
      ~crashes:[ { Dr.proc = 1; at = 7; return_at = Some 47 } ]
      ~horizon:160 example table_3p
  in
  checkb "failed over" true
    (List.exists
       (function Dr.Failover_complete _ -> true | _ -> false)
       r.Dr.events);
  let readmit_at =
    List.filter_map
      (function Dr.Readmitted { at; _ } -> Some at | _ -> None)
      r.Dr.events
  in
  checki "exactly one readmission" 1 (List.length readmit_at);
  let at = List.hd readmit_at in
  checkb "back to nominal" true (r.Dr.final_config = Dr.Nominal);
  List.iter
    (fun (i : Dr.invocation) ->
      if i.Dr.arrival >= at then begin
        checkb "post-readmission service is nominal" true
          (i.Dr.config = Dr.Nominal);
        checkb "post-readmission invocations met" true i.Dr.met
      end)
    r.Dr.invocations

let test_dist_net_faults_absorbed () =
  (* A nominal table synthesized with ARQ slack absorbs an admissible
     fault plan with zero misses. *)
  let nominal =
    match Ms.synthesize ~n_procs:3 ~msg_cost:1 ~arq_slack:1 example with
    | Ok r -> r
    | Error e -> Alcotest.failf "slack synthesis failed: %s" e
  in
  checki "slack recorded" 1 nominal.Ms.arq_slack;
  let table =
    match
      Cg.synthesize ~detect_bound:(Hb.detection_bound fast_hb) example nominal
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "table: %s" e
  in
  (* Reconstruct the realized message windows from a fault-free run,
     then greedily pick fault slots — the opening slot of each window —
     keeping every window at <= 1 fault, so the plan is admissible at
     the synthesized slack by construction.  The opening slot always
     carries a transmission attempt (the message is released and
     pending there), so the faults genuinely hit. *)
  let clean = Dr.run ~heartbeat:fast_hb ~horizon:80 example table in
  let windows =
    List.concat_map
      (fun (i : Dr.invocation) ->
        let plan =
          List.find
            (fun (p : Rt_multiproc.Decompose.plan) ->
              p.constraint_name = i.Dr.constraint_name)
            nominal.Ms.plans
        in
        List.filter_map
          (fun (w : Rt_multiproc.Decompose.windowed) ->
            match w.Rt_multiproc.Decompose.piece with
            | Rt_multiproc.Decompose.Message msg when msg.cost > 0 ->
                Some
                  ( i.Dr.arrival + w.Rt_multiproc.Decompose.start_off,
                    i.Dr.arrival + w.Rt_multiproc.Decompose.end_off )
            | _ -> None)
          plan.Rt_multiproc.Decompose.pieces)
      clean.Dr.invocations
  in
  checkb "the fixture has bus traffic" true (windows <> []);
  let faults =
    List.fold_left
      (fun acc (w0, _) ->
        let hits (a, b) =
          List.length (List.filter (fun f -> f.Nf.slot >= a && f.Nf.slot < b) acc)
        in
        let candidate = { Nf.slot = w0; kind = Nf.Lost } in
        if
          (not (List.exists (fun f -> f.Nf.slot = w0) acc))
          && List.for_all
               (fun w ->
                 hits w + (if w0 >= fst w && w0 < snd w then 1 else 0) <= 1)
               windows
        then candidate :: acc
        else acc)
      []
      (List.sort compare windows)
  in
  checkb "some faults injected" true (faults <> []);
  let r =
    Dr.run ~heartbeat:fast_hb ~net_faults:faults ~horizon:80 example table
  in
  checki "no misses despite bus faults" 0 r.Dr.misses;
  checkb "faults actually hit transmissions" true
    (r.Dr.bus_retransmissions > 0)

let test_dist_deterministic () =
  let run () =
    Dr.run ~heartbeat:fast_hb
      ~crashes:[ { Dr.proc = 2; at = 13; return_at = None } ]
      ~net_faults:
        (Nf.random_plan (Rt_graph.Prng.create 77) ~horizon:200 ~loss_rate:0.05)
      ~horizon:160 example table_3p
  in
  let a = run () and b = run () in
  checkb "identical invocations" true (a.Dr.invocations = b.Dr.invocations);
  checkb "identical events" true (a.Dr.events = b.Dr.events);
  checkb "identical realized tables" true
    (Array.for_all2 Schedule.equal a.Dr.realized b.Dr.realized)

let test_dist_stats_by_processor () =
  let crash = 11 in
  let r =
    Dr.run ~heartbeat:fast_hb
      ~crashes:[ { Dr.proc = 1; at = crash; return_at = None } ]
      ~horizon:80 example table_3p
  in
  let rollups = Rt_sim.Stats.by_processor example.Model.comm r in
  checki "one rollup per processor" 3 (List.length rollups);
  let p1 = List.nth rollups 1 in
  (* The crashed processor freezes: its busy slots are bounded by the
     crash instant. *)
  checkb "crashed processor stops" true (p1.Rt_sim.Stats.busy <= crash);
  let total_inv =
    List.fold_left
      (fun acc s -> acc + s.Rt_sim.Stats.proc_invocations)
      0 rollups
  in
  checki "every invocation owned by exactly one processor"
    (List.length r.Dr.invocations)
    total_inv;
  let total_misses =
    List.fold_left
      (fun acc s -> acc + s.Rt_sim.Stats.proc_misses)
      0 rollups
  in
  checki "misses partition by owner" r.Dr.misses total_misses

let () =
  Alcotest.run "rt_dist"
    [
      ( "heartbeat",
        [
          Alcotest.test_case "bound" `Quick test_heartbeat_bound;
          Alcotest.test_case "recovery" `Quick test_heartbeat_recovery;
        ] );
      ( "net_fault",
        [
          Alcotest.test_case "ARQ bound tight" `Quick test_arq_bound_tight;
          Alcotest.test_case "simulation matches admission" `Quick
            test_arq_simulation_matches_admission;
        ] );
      ( "contingency",
        [
          Alcotest.test_case "scenarios verified" `Quick
            test_contingency_scenarios_verified;
          Alcotest.test_case "bound accounting" `Quick
            test_contingency_bound_accounting;
          Alcotest.test_case "degrades under criticality" `Quick
            test_contingency_degrades;
          Alcotest.test_case "deterministic" `Quick
            test_contingency_deterministic;
        ] );
      ( "dist_runtime",
        [
          Alcotest.test_case "fault free" `Quick test_dist_fault_free;
          Alcotest.test_case "zero hard misses after bound" `Slow
            test_dist_zero_hard_misses_after_bound;
          Alcotest.test_case "detection within bound" `Slow
            test_dist_detection_within_bound;
          Alcotest.test_case "no failover misses" `Quick
            test_dist_no_failover_misses;
          Alcotest.test_case "readmission" `Quick test_dist_readmission;
          Alcotest.test_case "net faults absorbed" `Quick
            test_dist_net_faults_absorbed;
          Alcotest.test_case "deterministic" `Quick test_dist_deterministic;
          Alcotest.test_case "stats by processor" `Quick
            test_dist_stats_by_processor;
        ] );
    ]
