(* Tests for the specification language: lexer, parser, elaboration,
   pretty-printer round-trip, and DOT export. *)

open Rt_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let example_src =
  {|
# The paper's example control system (Figures 1 and 2).
system "control" {
  element f_x weight 1 pipelinable;
  element f_y weight 1 pipelinable;
  element f_z weight 1 pipelinable;
  element f_s weight 2 pipelinable;
  element f_k weight 1 pipelinable;
  edge f_x -> f_s;
  edge f_y -> f_s;
  edge f_z -> f_s;
  edge f_s -> f_k;
  edge f_k -> f_s;
  constraint px periodic period 10 deadline 10 {
    f_x -> f_s -> f_k;
  }
  constraint py periodic period 20 deadline 20 {
    f_y -> f_s -> f_k;
  }
  constraint pz asynchronous separation 50 deadline 15 {
    f_z -> f_s;
  }
}
|}

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lexer_tokens () =
  let toks = List.map fst (Rt_spec.Lexer.tokenize "foo 42 -> { } ; \"bar\"") in
  checkb "token kinds" true
    (toks
    = [
        Rt_spec.Lexer.IDENT "foo";
        Rt_spec.Lexer.INT 42;
        Rt_spec.Lexer.ARROW;
        Rt_spec.Lexer.LBRACE;
        Rt_spec.Lexer.RBRACE;
        Rt_spec.Lexer.SEMI;
        Rt_spec.Lexer.STRING "bar";
        Rt_spec.Lexer.EOF;
      ])

let test_lexer_comments_and_positions () =
  let toks = Rt_spec.Lexer.tokenize "a # comment to eol\n  b" in
  (match toks with
  | [ (Rt_spec.Lexer.IDENT "a", p1); (Rt_spec.Lexer.IDENT "b", p2); _ ] ->
      checki "a line" 1 p1.Rt_spec.Lexer.line;
      checki "b line" 2 p2.Rt_spec.Lexer.line;
      checki "b col" 3 p2.Rt_spec.Lexer.col
  | _ -> Alcotest.fail "unexpected token stream")

let test_lexer_errors () =
  checkb "bad char" true
    (try
       ignore (Rt_spec.Lexer.tokenize "a @ b");
       false
     with Rt_spec.Lexer.Lex_error _ -> true);
  checkb "unterminated string" true
    (try
       ignore (Rt_spec.Lexer.tokenize "\"oops");
       false
     with Rt_spec.Lexer.Lex_error _ -> true);
  checkb "dash without arrow" true
    (try
       ignore (Rt_spec.Lexer.tokenize "a - b");
       false
     with Rt_spec.Lexer.Lex_error _ -> true)

let test_lexer_stage_names () =
  (* '#' inside an identifier (stage names like f_s#2) must lex as one
     identifier, while a leading '#' starts a comment. *)
  match Rt_spec.Lexer.tokenize "f_s#2" with
  | [ (Rt_spec.Lexer.IDENT "f_s#2", _); _ ] -> ()
  | _ -> Alcotest.fail "stage name must be a single identifier"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_example () =
  let sys = Rt_spec.Parser.parse example_src in
  Alcotest.check Alcotest.string "name" "control" sys.Rt_spec.Ast.sy_name;
  checki "five elements" 5 (List.length sys.Rt_spec.Ast.sy_elements);
  checki "five edges" 5 (List.length sys.Rt_spec.Ast.sy_edges);
  checki "three constraints" 3 (List.length sys.Rt_spec.Ast.sy_constraints);
  let pz = List.nth sys.Rt_spec.Ast.sy_constraints 2 in
  checkb "pz async" true (pz.Rt_spec.Ast.co_kind = Rt_spec.Ast.K_asynchronous);
  checki "pz separation" 50 pz.Rt_spec.Ast.co_period;
  checki "pz deadline" 15 pz.Rt_spec.Ast.co_deadline;
  checkb "pz chain" true (pz.Rt_spec.Ast.co_chains = [ [ "f_z"; "f_s" ] ])

let test_parse_multi_chain_dag () =
  let src =
    {|system "s" {
       element a weight 1 pipelinable;
       element b weight 1 pipelinable;
       element c weight 1 pipelinable;
       edge a -> b; edge a -> c;
       constraint k periodic period 5 deadline 5 { a -> b; a -> c; }
     }|}
  in
  let sys = Rt_spec.Parser.parse src in
  let k = List.hd sys.Rt_spec.Ast.sy_constraints in
  checki "two chains" 2 (List.length k.Rt_spec.Ast.co_chains)

let test_parse_errors_positioned () =
  (match Rt_spec.Parser.parse_result "system \"s\" { element }" with
  | Error msg -> checkb "mentions position" true (String.length msg > 4)
  | Ok _ -> Alcotest.fail "must fail");
  (match Rt_spec.Parser.parse_result "system \"s\" { }
trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage rejected");
  match
    Rt_spec.Parser.parse_result
      "system \"s\" { constraint k periodic separation 5 deadline 5 { } }"
  with
  | Error _ -> () (* periodic must use 'period' *)
  | Ok _ -> Alcotest.fail "keyword mismatch rejected"

(* ------------------------------------------------------------------ *)
(* Elaborate                                                           *)
(* ------------------------------------------------------------------ *)

let test_elaborate_example () =
  match Rt_spec.Elaborate.load example_src with
  | Error errs -> Alcotest.failf "elaboration failed: %s" (String.concat "; " errs)
  | Ok m ->
      let reference =
        Rt_workload.Suite.control_system Rt_workload.Suite.default_params
      in
      checkb "comm graph equal to the reference model" true
        (Comm_graph.equal m.Model.comm reference.Model.comm);
      checki "three constraints" 3 (List.length m.Model.constraints);
      (* Same synthesis outcome as the programmatic model. *)
      (match (Synthesis.synthesize m, Synthesis.synthesize reference) with
      | Ok a, Ok b ->
          checkb "same schedule" true
            (Schedule.equal a.Synthesis.schedule b.Synthesis.schedule)
      | _ -> Alcotest.fail "both must synthesize")

let test_elaborate_unknown_element () =
  let src =
    {|system "s" { element a weight 1 pipelinable;
       constraint k periodic period 5 deadline 5 { a -> ghost; } }|}
  in
  match Rt_spec.Elaborate.load src with
  | Error errs ->
      checkb "mentions ghost" true
        (List.exists
           (fun e ->
             let contains hay needle =
               let nh = String.length hay and nn = String.length needle in
               let rec go i =
                 i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
               in
               go 0
             in
             contains e "ghost")
           errs)
  | Ok _ -> Alcotest.fail "unknown element must fail"

let test_elaborate_incompatible_edge () =
  let src =
    {|system "s" {
       element a weight 1 pipelinable; element b weight 1 pipelinable;
       constraint k periodic period 5 deadline 5 { a -> b; } }|}
  in
  (* No communication edge a -> b declared. *)
  match Rt_spec.Elaborate.load src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incompatible task edge must fail"

let test_elaborate_cyclic_task () =
  let src =
    {|system "s" {
       element a weight 1 pipelinable; element b weight 1 pipelinable;
       edge a -> b; edge b -> a;
       constraint k periodic period 5 deadline 5 { a -> b; b -> a; } }|}
  in
  match Rt_spec.Elaborate.load src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cyclic task graph must fail"

(* ------------------------------------------------------------------ *)
(* Printer round-trip                                                  *)
(* ------------------------------------------------------------------ *)

let canonical_constraint (m : Model.t) (c : Timing.t) =
  let elem v = Task_graph.element_of_node c.Timing.graph v in
  ( (c.Timing.name, c.Timing.offset),
    c.Timing.period,
    c.Timing.deadline,
    c.Timing.kind,
    List.sort compare
      (List.map elem (List.init (Task_graph.size c.Timing.graph) Fun.id)),
    List.sort compare
      (List.map (fun (u, v) -> (elem u, elem v)) (Task_graph.edges c.Timing.graph)),
    Comm_graph.equal m.Model.comm m.Model.comm )

let models_equivalent a b =
  Comm_graph.equal a.Model.comm b.Model.comm
  && List.length a.Model.constraints = List.length b.Model.constraints
  && List.for_all2
       (fun ca cb -> canonical_constraint a ca = canonical_constraint b cb)
       a.Model.constraints b.Model.constraints

let test_roundtrip_example () =
  let m = Rt_workload.Suite.control_system Rt_workload.Suite.default_params in
  let printed = Rt_spec.Printer.print ~name:"control" m in
  match Rt_spec.Elaborate.load printed with
  | Error errs -> Alcotest.failf "reparse failed: %s" (String.concat "; " errs)
  | Ok m' -> checkb "round-trip equivalent" true (models_equivalent m m')

let test_roundtrip_random_models () =
  let g = Rt_graph.Prng.create 5150 in
  for _ = 1 to 20 do
    let m =
      Rt_workload.Model_gen.periodic_chain_model g ~n_constraints:4
        ~utilization:0.6 ~periods:[ 8; 12; 24 ]
    in
    let printed = Rt_spec.Printer.print m in
    match Rt_spec.Elaborate.load printed with
    | Error errs ->
        Alcotest.failf "reparse failed: %s\n%s" (String.concat "; " errs)
          printed
    | Ok m' -> checkb "round-trip equivalent" true (models_equivalent m m')
  done

let test_offset_roundtrip () =
  let src =
    {|system "s" {
       element a weight 1 pipelinable;
       constraint k periodic period 10 deadline 4 offset 5 { a; }
     }|}
  in
  match Rt_spec.Elaborate.load src with
  | Error errs -> Alcotest.failf "load: %s" (String.concat "; " errs)
  | Ok m ->
      let k = Model.find m "k" in
      checki "offset parsed" 5 k.Timing.offset;
      let printed = Rt_spec.Printer.print m in
      (match Rt_spec.Elaborate.load printed with
      | Ok m' ->
          checki "offset survives round-trip" 5 (Model.find m' "k").Timing.offset
      | Error errs -> Alcotest.failf "reload: %s" (String.concat "; " errs));
      (* Out-of-range offsets are rejected at elaboration. *)
      let bad =
        {|system "s" {
           element a weight 1 pipelinable;
           constraint k periodic period 10 deadline 4 offset 12 { a; }
         }|}
      in
      checkb "offset >= period rejected" true
        (match Rt_spec.Elaborate.load bad with Error _ -> true | Ok _ -> false)

let test_print_rejects_duplicates () =
  let comm =
    Comm_graph.create ~elements:[ ("a", 1, true) ] ~edges:[ ("a", "a") ]
  in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"k"
            ~graph:(Task_graph.create ~nodes:[| 0; 0 |] ~edges:[ (0, 1) ])
            ~period:5 ~deadline:5 ~kind:Timing.Periodic;
        ]
  in
  checkb "raises" true
    (try
       ignore (Rt_spec.Printer.print m);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Assert declarations                                                 *)
(* ------------------------------------------------------------------ *)

let test_assert_parse_and_elaborate () =
  let src =
    {|system "s" {
       element a weight 1 pipelinable; element b weight 1 pipelinable;
       edge a -> b;
       assert a -> b in [-5, 10];
       constraint k periodic period 5 deadline 5 { a -> b; }
     }|}
  in
  match Rt_spec.Elaborate.load_with_assertions src with
  | Error errs -> Alcotest.failf "load: %s" (String.concat "; " errs)
  | Ok (_, asserts) ->
      checkb "one assert with float bounds" true
        (asserts = [ ("a", "b", -5.0, 10.0) ])

let test_assert_validation () =
  let base body =
    Printf.sprintf
      {|system "s" {
         element a weight 1 pipelinable; element b weight 1 pipelinable;
         edge a -> b;
         %s
         constraint k periodic period 5 deadline 5 { a -> b; }
       }|}
      body
  in
  (* No such communication edge. *)
  (match Rt_spec.Elaborate.load (base "assert b -> a in [0, 1];") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "assert on missing edge must fail");
  (* Empty interval. *)
  (match Rt_spec.Elaborate.load (base "assert a -> b in [5, -5];") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty interval must fail");
  (* Unknown element. *)
  match Rt_spec.Elaborate.load (base "assert a -> ghost in [0, 1];") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown element must fail"

let test_assert_print_roundtrip () =
  let src =
    {|system "s" {
       element a weight 1 pipelinable; element b weight 1 pipelinable;
       edge a -> b;
       assert a -> b in [-7, 7];
       constraint k periodic period 5 deadline 5 { a -> b; }
     }|}
  in
  match Rt_spec.Elaborate.load_with_assertions src with
  | Error errs -> Alcotest.failf "load: %s" (String.concat "; " errs)
  | Ok (m, asserts) -> (
      let printed = Rt_spec.Printer.print ~assertions:asserts m in
      match Rt_spec.Elaborate.load_with_assertions printed with
      | Error errs -> Alcotest.failf "reload: %s" (String.concat "; " errs)
      | Ok (_, asserts') ->
          checkb "assertions survive round-trip" true (asserts = asserts'))

let test_negative_int_lexing () =
  (match Rt_spec.Lexer.tokenize "[-12, 3]" with
  | [ (Rt_spec.Lexer.LBRACKET, _); (Rt_spec.Lexer.INT (-12), _);
      (Rt_spec.Lexer.COMMA, _); (Rt_spec.Lexer.INT 3, _);
      (Rt_spec.Lexer.RBRACKET, _); (Rt_spec.Lexer.EOF, _) ] ->
      ()
  | _ -> Alcotest.fail "bracketed negative integers must lex");
  checkb "bare dash still rejected" true
    (try
       ignore (Rt_spec.Lexer.tokenize "a - b");
       false
     with Rt_spec.Lexer.Lex_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Persist                                                             *)
(* ------------------------------------------------------------------ *)

let persist_fixture () =
  let m = Rt_workload.Suite.control_system Rt_workload.Suite.default_params in
  match Synthesis.synthesize m with
  | Ok plan -> (plan.Synthesis.model_used, plan.Synthesis.schedule)
  | Error _ -> Alcotest.fail "example must synthesize"

let test_persist_roundtrip () =
  let m, sched = persist_fixture () in
  let text = Rt_spec.Persist.save_string m sched in
  match Rt_spec.Persist.load_string text with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok (m', sched') ->
      checkb "same schedule" true
        (Schedule.to_string m.Model.comm sched
        = Schedule.to_string m'.Model.comm sched');
      checkb "loaded plan verifies" true
        (Latency.all_ok (Latency.verify m' sched'))

let test_persist_rejects_tampering () =
  let m, sched = persist_fixture () in
  let text = Rt_spec.Persist.save_string m sched in
  (* Corrupt the schedule line: replace the first f_z slot by idle; the
     pz latency then breaks somewhere and the loader must notice, or
     the plan coincidentally still verifies — flip more slots until it
     must fail: drop ALL f_z slots. *)
  let corrupted =
    String.concat "
"
      (List.map
         (fun line ->
           if String.length line >= 9 && String.sub line 0 9 = "schedule:"
           then
             String.concat " "
               (List.map
                  (fun tok -> if tok = "f_z" then "." else tok)
                  (String.split_on_char ' ' line))
           else line)
         (String.split_on_char '
' text))
  in
  (match Rt_spec.Persist.load_string corrupted with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schedule without f_z must be rejected");
  (* Header tampering. *)
  match Rt_spec.Persist.load_string ("#nope
" ^ text) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header must be rejected"

let test_persist_rejects_infeasible_save () =
  let m, _ = persist_fixture () in
  let idle = Schedule.of_slots [ Schedule.Idle ] in
  checkb "raises on unverified schedule" true
    (try
       ignore (Rt_spec.Persist.save_string m idle);
       false
     with Invalid_argument _ -> true)

let test_persist_file_io () =
  let m, sched = persist_fixture () in
  let path = Filename.temp_file "rtsyn_plan" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rt_spec.Persist.save_file path m sched;
      match Rt_spec.Persist.load_file path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "file round-trip failed: %s" e)

(* ------------------------------------------------------------------ *)
(* Dot                                                                 *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_dot_outputs () =
  let m = Rt_workload.Suite.control_system Rt_workload.Suite.default_params in
  let dc = Rt_spec.Dot.comm_graph m in
  checkb "comm mentions f_s with weight" true (contains dc "f_s (2)");
  checkb "atomic shape absent when pipelinable" false (contains dc "shape=box");
  let dt = Rt_spec.Dot.task_graph m (Model.find m "px") in
  checkb "task graph digraph" true (contains dt "digraph px");
  let df = Rt_spec.Dot.full m in
  checkb "full has clusters" true (contains df "subgraph cluster_comm");
  checkb "full names constraints" true (contains df "pz (asynchronous p=50 d=15)")

let () =
  Alcotest.run "rt_spec"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments/positions" `Quick
            test_lexer_comments_and_positions;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "stage names" `Quick test_lexer_stage_names;
        ] );
      ( "parser",
        [
          Alcotest.test_case "example" `Quick test_parse_example;
          Alcotest.test_case "multi-chain DAG" `Quick
            test_parse_multi_chain_dag;
          Alcotest.test_case "errors" `Quick test_parse_errors_positioned;
        ] );
      ( "elaborate",
        [
          Alcotest.test_case "example" `Quick test_elaborate_example;
          Alcotest.test_case "unknown element" `Quick
            test_elaborate_unknown_element;
          Alcotest.test_case "incompatible edge" `Quick
            test_elaborate_incompatible_edge;
          Alcotest.test_case "cyclic task" `Quick test_elaborate_cyclic_task;
        ] );
      ( "printer",
        [
          Alcotest.test_case "round-trip example" `Quick test_roundtrip_example;
          Alcotest.test_case "round-trip random" `Quick
            test_roundtrip_random_models;
          Alcotest.test_case "rejects duplicates" `Quick
            test_print_rejects_duplicates;
          Alcotest.test_case "offset round-trip" `Quick test_offset_roundtrip;
        ] );
      ( "asserts",
        [
          Alcotest.test_case "parse and elaborate" `Quick
            test_assert_parse_and_elaborate;
          Alcotest.test_case "validation" `Quick test_assert_validation;
          Alcotest.test_case "print round-trip" `Quick
            test_assert_print_roundtrip;
          Alcotest.test_case "negative ints" `Quick test_negative_int_lexing;
        ] );
      ( "persist",
        [
          Alcotest.test_case "roundtrip" `Quick test_persist_roundtrip;
          Alcotest.test_case "rejects tampering" `Quick
            test_persist_rejects_tampering;
          Alcotest.test_case "rejects infeasible save" `Quick
            test_persist_rejects_infeasible_save;
          Alcotest.test_case "file io" `Quick test_persist_file_io;
        ] );
      ("dot", [ Alcotest.test_case "outputs" `Quick test_dot_outputs ]);
    ]
