(* The certified-schedule trust split: genuine certificates from every
   engine must pass the independent checker, and the mutation harness's
   corrupted variants must all be rejected — the checker is only a
   trust anchor if it catches tampering, not just honest mistakes.

   Also pins the budget layer's contract: budgeted exact solvers return
   Timeout within twice the requested wall budget on an E3 (3-PARTITION
   reduction) instance, and Synthesis degrades to a diagnosable
   stage-"budget" error instead of raising.

   CI greps for these test names; renaming them silently disables the
   gate (.github/workflows/ci.yml). *)

open Rt_core
module Suite = Rt_workload.Suite
module Npc = Rt_workload.Npc
module Mutate = Rt_workload.Mutate

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let example = Suite.control_system Suite.default_params

let synth_plan m =
  match Synthesis.synthesize m with
  | Ok p -> p
  | Error e -> Alcotest.failf "fixture synthesis failed: %s/%s" e.Synthesis.stage e.Synthesis.message

let cert_of_plan p =
  match Certify.plan p with
  | Ok c -> c
  | Error e -> Alcotest.failf "fixture certification failed: %s" e

(* Genuine (model, certificate) pairs spanning the engines: heuristic
   synthesis on the paper's control system and on the smallest
   nontrivial instance, plus the hand-built 3-PARTITION witness
   schedule certified directly. *)
let genuine_pairs () =
  let of_plan m =
    let p = synth_plan m in
    (p.Synthesis.model_used, cert_of_plan p)
  in
  let e3 =
    let b = 16 in
    let items = Npc.three_partition_yes (Rt_graph.Prng.create 3) ~m:3 ~b in
    let triples =
      match Npc.three_partition_solve items ~b with
      | Some t -> t
      | None -> Alcotest.fail "E3 fixture is not a yes-instance"
    in
    let m, sched = Npc.witness_schedule items ~b triples in
    match Certify.schedule m sched with
    | Ok c -> (m, c)
    | Error e -> Alcotest.failf "E3 certification failed: %s" e
  in
  let tiny =
    (* Below the polling heuristic's reach — certify the exact game
       engine's schedule instead. *)
    match Exact.solve_single_ops Suite.tiny_two_ops with
    | { Exact.outcome = Exact.Feasible sched; _ } -> (
        match Certify.schedule Suite.tiny_two_ops sched with
        | Ok c -> (Suite.tiny_two_ops, c)
        | Error e -> Alcotest.failf "tiny certification failed: %s" e)
    | _ -> Alcotest.fail "tiny_two_ops must be feasible"
  in
  [ ("control", of_plan example); ("tiny", tiny); ("e3-witness", e3) ]

(* ------------------------------------------------------------------ *)
(* Checker accepts every genuine certificate                           *)
(* ------------------------------------------------------------------ *)

let test_checker_accepts_genuine () =
  List.iter
    (fun (what, (m, cert)) ->
      match Checker.check m cert with
      | Ok () -> ()
      | Error errs ->
          Alcotest.failf "%s: genuine certificate rejected: %s" what
            (String.concat "; " errs))
    (genuine_pairs ())

(* ------------------------------------------------------------------ *)
(* Mutation harness: 100% rejection of non-identity mutants            *)
(* ------------------------------------------------------------------ *)

let test_mutants_all_rejected () =
  List.iter
    (fun (what, (m, cert)) ->
      let muts = Mutate.mutants cert in
      checkb (what ^ ": harness produced mutants") true (muts <> []);
      List.iter
        (fun (label, mutant) ->
          checkb
            (Printf.sprintf "%s/%s: mutant differs from original" what label)
            false
            (Certificate.equal cert mutant);
          match Checker.check m mutant with
          | Ok () ->
              Alcotest.failf "%s/%s: checker accepted a mutant" what label
          | Error _ -> ())
        muts)
    (genuine_pairs ())

let test_mutate_kinds_cover () =
  let m, cert = List.assoc "control" (genuine_pairs ()) in
  List.iter
    (fun kind ->
      match Mutate.mutate kind cert with
      | None ->
          Alcotest.failf "kind %s inapplicable on the control certificate"
            (Mutate.kind_name kind)
      | Some mutant -> (
          checkb
            (Mutate.kind_name kind ^ ": non-identity")
            false
            (Certificate.equal cert mutant);
          match Checker.check m mutant with
          | Ok () ->
              Alcotest.failf "kind %s accepted" (Mutate.kind_name kind)
          | Error _ -> ()))
    Mutate.kinds

(* QCheck: over random single-op workloads that the game engine can
   actually schedule, certification succeeds, the checker accepts, and
   every mutant both differs and is rejected. *)
let qcheck_random_certified_models =
  let gen_seed = QCheck.make QCheck.Gen.(int_bound 10_000) in
  QCheck.Test.make ~count:40
    ~name:"random feasible models: genuine certs accepted, all mutants rejected"
    gen_seed
    (fun seed ->
      let g = Rt_graph.Prng.create (1 + seed) in
      let m =
        Rt_workload.Model_gen.single_op_model g ~max_deadline:12
          ~n_constraints:(2 + (seed mod 3))
          ~max_weight:2 ~target_ratio_sum:0.6
      in
      match Exact.solve_single_ops ~max_states:50_000 m with
      | { Exact.outcome = Exact.Feasible sched; _ } -> (
          match Certify.schedule m sched with
          | Error e -> QCheck.Test.fail_reportf "certify failed: %s" e
          | Ok cert ->
              Checker.check m cert = Ok ()
              && List.for_all
                   (fun (_, mutant) ->
                     (not (Certificate.equal cert mutant))
                     && Checker.check m mutant <> Ok ())
                   (Mutate.mutants cert))
      | _ -> true (* infeasible/unknown draws prove nothing — skip *))

(* ------------------------------------------------------------------ *)
(* Persist round-trip                                                  *)
(* ------------------------------------------------------------------ *)

let test_certificate_persist_roundtrip () =
  (* Saving canonicalizes (elaboration orders task-graph nodes
     alphabetically), so the reloaded pair must be self-consistent and
     checker-clean, and a second round-trip must be the identity. *)
  let p = synth_plan example in
  let cert = cert_of_plan p in
  let s = Rt_spec.Persist.save_certificate_string p.Synthesis.model_used cert in
  match Rt_spec.Persist.load_certificate_string s with
  | Error e -> Alcotest.failf "reload failed: %s" e
  | Ok (m', cert') -> (
      checkb "reloaded model digest matches" true
        (Certificate.digest_of_model m' = cert'.Certificate.digest);
      (match Checker.check m' cert' with
      | Ok () -> ()
      | Error errs ->
          Alcotest.failf "reloaded certificate rejected: %s"
            (String.concat "; " errs));
      let s2 = Rt_spec.Persist.save_certificate_string m' cert' in
      Alcotest.check Alcotest.string "second round-trip is identity" s s2;
      match Rt_spec.Persist.load_certificate_string s2 with
      | Error e -> Alcotest.failf "second reload failed: %s" e
      | Ok (_, cert'') ->
          checkb "canonical certificate is a fixed point" true
            (Certificate.equal cert' cert''))

(* ------------------------------------------------------------------ *)
(* Multiprocessor and contingency certificates                         *)
(* ------------------------------------------------------------------ *)

let test_multiproc_certificate () =
  match Rt_multiproc.Msched.synthesize ~n_procs:2 ~msg_cost:1 example with
  | Error e -> Alcotest.failf "msched fixture failed: %s" e
  | Ok r -> (
      let cert = Rt_multiproc.Mcert.result_cert example r in
      match Checker.check_multi example cert with
      | Ok () -> ()
      | Error errs ->
          Alcotest.failf "multiproc certificate rejected: %s"
            (String.concat "; " errs))

let test_multiproc_cert_tamper_rejected () =
  match Rt_multiproc.Msched.synthesize ~n_procs:2 ~msg_cost:1 example with
  | Error e -> Alcotest.failf "msched fixture failed: %s" e
  | Ok r ->
      let cert = Rt_multiproc.Mcert.result_cert example r in
      let tampered = { cert with Certificate.mp_digest = "bogus" } in
      checkb "digest tamper rejected" true
        (Checker.check_multi example tampered <> Ok ());
      let dropped_plan =
        match cert.Certificate.mp_plans with
        | _ :: rest -> { cert with Certificate.mp_plans = rest }
        | [] -> Alcotest.fail "fixture has no plans"
      in
      checkb "dropped plan rejected" true
        (Checker.check_multi example dropped_plan <> Ok ())

let test_contingency_certificate () =
  match Rt_multiproc.Msched.synthesize ~n_procs:3 ~msg_cost:1 example with
  | Error e -> Alcotest.failf "msched fixture failed: %s" e
  | Ok nominal -> (
      match Rt_multiproc.Contingency.synthesize ~detect_bound:1 example nominal with
      | Error e -> Alcotest.failf "contingency fixture failed: %s" e
      | Ok table -> (
          let tcert = Rt_multiproc.Mcert.table_cert example table in
          match Rt_multiproc.Contingency.admits_reconfiguration example table with
          | Ok () -> (
              match Checker.check_table example tcert with
              | Ok () -> ()
              | Error errs ->
                  Alcotest.failf "contingency certificate rejected: %s"
                    (String.concat "; " errs))
          | Error _ ->
              (* No reconfiguration slack: the full-table judgment does
                 not apply, but nominal and every feasible scenario must
                 still certify individually. *)
              (match Checker.check_multi example tcert.Certificate.t_nominal with
              | Ok () -> ()
              | Error errs ->
                  Alcotest.failf "nominal certificate rejected: %s"
                    (String.concat "; " errs));
              List.iter
                (fun (dead, scert) ->
                  match Checker.check_multi example scert with
                  | Ok () -> ()
                  | Error errs ->
                      Alcotest.failf "scenario %d certificate rejected: %s" dead
                        (String.concat "; " errs))
                tcert.Certificate.t_scenarios))

(* ------------------------------------------------------------------ *)
(* Budgets: Timeout within 2x the wall budget; graceful synthesis      *)
(* ------------------------------------------------------------------ *)

let e3_hard_model () =
  (* A 3-PARTITION yes-instance big enough that the game engine cannot
     finish within the test budgets (the CLI smoke test pins the same
     family at m = 6, b = 40). *)
  let g = Rt_graph.Prng.create 11 in
  let items = Npc.three_partition_yes g ~m:6 ~b:40 in
  Npc.reduction_model items ~b:40

let test_budget_wall_timeout () =
  let m = e3_hard_model () in
  let wall_s = 0.4 in
  let budget = Budget.create ~wall_s () in
  let t0 = Unix.gettimeofday () in
  let stats = Exact.solve_single_ops ~budget m in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match stats.Exact.outcome with
  | Exact.Timeout _ -> ()
  | o ->
      Alcotest.failf "expected Timeout, got %s"
        (match o with
        | Exact.Feasible _ -> "Feasible"
        | Exact.Infeasible -> "Infeasible"
        | Exact.Unknown r -> "Unknown: " ^ r
        | Exact.Timeout _ -> assert false));
  checkb
    (Printf.sprintf "returned within 2x wall budget (%.3fs <= %.3fs)" elapsed
       (2.0 *. wall_s))
    true
    (elapsed <= 2.0 *. wall_s)

let test_budget_fuel_timeout () =
  let m = e3_hard_model () in
  let budget = Budget.create ~fuel:2_000 () in
  match (Exact.solve_single_ops ~budget m).Exact.outcome with
  | Exact.Timeout _ -> ()
  | _ -> Alcotest.fail "fuel budget did not produce Timeout"

let test_budget_absent_identical () =
  (* The no-budget path must be bit-identical to the historical engine:
     same outcome, same exploration count, run to run. *)
  let m = Suite.tiny_two_ops in
  let a = Exact.solve_single_ops m in
  let b = Exact.solve_single_ops m in
  checki "explored identical" a.Exact.explored b.Exact.explored;
  checkb "both feasible" true
    (match (a.Exact.outcome, b.Exact.outcome) with
    | Exact.Feasible s1, Exact.Feasible s2 -> s1 = s2
    | _ -> false)

let test_synthesis_budget_graceful () =
  (* An already-exhausted budget must yield a diagnosable stage-"budget"
     error, never an exception, and a generous budget must not change
     the result. *)
  (match Synthesis.synthesize ~budget:(Budget.create ~fuel:0 ()) example with
  | Error e -> Alcotest.check Alcotest.string "stage" "budget" e.Synthesis.stage
  | Ok _ -> Alcotest.fail "fuel-0 synthesis unexpectedly succeeded");
  match Synthesis.synthesize ~budget:(Budget.create ~fuel:1_000_000 ()) example with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "generous budget failed: %s/%s" e.Synthesis.stage
        e.Synthesis.message

(* ------------------------------------------------------------------ *)
(* Game transposition-table gauges                                     *)
(* ------------------------------------------------------------------ *)

let test_game_table_gauges () =
  let m = Suite.tiny_two_ops in
  ignore (Exact.solve_single_ops m);
  let size = Rt_obs.Metrics.gauge_value (Rt_obs.Metrics.gauge "game/table_size") in
  checkb "table size gauge published" true (size >= 0);
  checki "no evictions under the default cap" 0
    (Rt_obs.Metrics.value (Rt_obs.Metrics.counter "game/table_evictions"))

let () =
  Alcotest.run "checker"
    [
      ( "accepts",
        [
          Alcotest.test_case "genuine certificates accepted" `Quick
            test_checker_accepts_genuine;
          Alcotest.test_case "persist round-trip" `Quick
            test_certificate_persist_roundtrip;
          Alcotest.test_case "multiproc certificate" `Quick
            test_multiproc_certificate;
          Alcotest.test_case "contingency certificate" `Quick
            test_contingency_certificate;
        ] );
      ( "rejects",
        [
          Alcotest.test_case "all mutants rejected" `Quick
            test_mutants_all_rejected;
          Alcotest.test_case "every mutation kind applies and is caught"
            `Quick test_mutate_kinds_cover;
          Alcotest.test_case "multiproc tampering rejected" `Quick
            test_multiproc_cert_tamper_rejected;
          QCheck_alcotest.to_alcotest qcheck_random_certified_models;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "wall budget times out within 2x" `Quick
            test_budget_wall_timeout;
          Alcotest.test_case "fuel budget times out" `Quick
            test_budget_fuel_timeout;
          Alcotest.test_case "no budget is bit-identical" `Quick
            test_budget_absent_identical;
          Alcotest.test_case "synthesis degrades gracefully" `Quick
            test_synthesis_budget_graceful;
        ] );
      ( "observability",
        [
          Alcotest.test_case "game table gauges" `Quick
            test_game_table_gauges;
        ] );
    ]
