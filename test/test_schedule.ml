(* Tests for static schedules (Schedule) and execution traces / instance
   decomposition (Trace). *)

open Rt_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let comm =
  Comm_graph.create
    ~elements:[ ("a", 1, true); ("b", 2, true); ("c", 2, false) ]
    ~edges:[ ("a", "b"); ("b", "c") ]

let sched_of ids =
  Schedule.of_slots
    (List.map
       (function -1 -> Schedule.Idle | e -> Schedule.Run e)
       ids)

(* ------------------------------------------------------------------ *)
(* Schedule                                                            *)
(* ------------------------------------------------------------------ *)

let test_basic_accessors () =
  let s = sched_of [ 0; 1; 1; -1 ] in
  checki "length" 4 (Schedule.length s);
  checki "busy" 3 (Schedule.busy_slots s);
  checki "idle" 1 (Schedule.idle_slots s);
  checki "occurrences of b" 2 (Schedule.occurrences s 1);
  Alcotest.check (Alcotest.float 1e-9) "load" 0.75 (Schedule.load s);
  checkb "round robin wraps" true (Schedule.slot s 4 = Schedule.Run 0);
  checkb "round robin wraps idle" true (Schedule.slot s 7 = Schedule.Idle)

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Schedule: empty schedule")
    (fun () -> ignore (Schedule.of_slots []))

let test_unroll () =
  let s = sched_of [ 0; -1 ] in
  let u = Schedule.unroll s 5 in
  checkb "unrolled pattern" true
    (u = [| Schedule.Run 0; Schedule.Idle; Schedule.Run 0; Schedule.Idle; Schedule.Run 0 |])

let test_validate_ok () =
  let s = sched_of [ 0; 1; 1; 2; 2 ] in
  checkb "well-formed" true (Schedule.validate comm s = Ok ())

let test_validate_partial_execution () =
  (* b has weight 2 but only 1 slot per cycle. *)
  let s = sched_of [ 0; 1 ] in
  match Schedule.validate comm s with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "partial execution must be rejected"

let test_validate_split_atomic () =
  (* c is non-pipelinable with weight 2; splitting its two slots around
     another element must be rejected... *)
  let s = sched_of [ 2; 0; 2; -1 ] in
  (match Schedule.validate comm s with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "split atomic execution must be rejected");
  (* ...and so must a wrap around the cycle boundary: the induced trace
     starts at slot 0, so the first occurrence of the wrapped execution
     is non-contiguous (slots 0 and 3). *)
  let wrap = sched_of [ 2; 0; -1; 2 ] in
  (match Schedule.validate comm wrap with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "boundary-split execution must be rejected");
  (* Two back-to-back executions in one run are fine. *)
  let back_to_back = sched_of [ 2; 2; 2; 2; 0 ] in
  checkb "k*w run accepted" true (Schedule.validate comm back_to_back = Ok ())

let test_validate_unknown_element () =
  let s = sched_of [ 9 ] in
  match Schedule.validate comm s with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown element must be rejected"

let test_rotate () =
  let s = sched_of [ 0; 1; 1; -1 ] in
  let r = Schedule.rotate s 1 in
  checkb "rotated first slot" true (Schedule.slot r 0 = Schedule.Run 1);
  checkb "rotate by length is identity" true
    (Schedule.equal s (Schedule.rotate s 4));
  checkb "negative rotation" true
    (Schedule.equal (Schedule.rotate s (-1)) (Schedule.rotate s 3))

let test_concat_repeat () =
  let s = sched_of [ 0 ] in
  let t = sched_of [ 1; 1 ] in
  checki "concat length" 3 (Schedule.length (Schedule.concat s t));
  checki "repeat length" 4 (Schedule.length (Schedule.repeat t 2));
  Alcotest.check_raises "repeat 0 rejected"
    (Invalid_argument "Schedule.repeat: k must be >= 1") (fun () ->
      ignore (Schedule.repeat s 0))

let test_to_string () =
  let s = sched_of [ 0; -1; 1 ] in
  Alcotest.check Alcotest.string "names" "a . b" (Schedule.to_string comm s)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_instance_grouping () =
  (* b (weight 2) executes at slots 1,2 and 4,6: two instances, the
     second one split by a slot of a (software pipelining). *)
  let slots =
    [| Schedule.Run 0; Schedule.Run 1; Schedule.Run 1; Schedule.Idle;
       Schedule.Run 1; Schedule.Run 0; Schedule.Run 1 |]
  in
  let tr = Trace.of_slots comm slots in
  checki "a instances" 2 (Trace.instance_count tr 0);
  checki "b instances" 2 (Trace.instance_count tr 1);
  let b1 = (Trace.instances tr 1).(0) in
  checki "b first start" 1 b1.Trace.start;
  checki "b first finish" 3 b1.Trace.finish;
  let b2 = (Trace.instances tr 1).(1) in
  checki "b second start" 4 b2.Trace.start;
  checki "b second finish" 7 b2.Trace.finish;
  checkb "slots recorded" true (b2.Trace.slots = [| 4; 6 |])

let test_incomplete_execution_dropped () =
  let slots = [| Schedule.Run 1 |] in
  let tr = Trace.of_slots comm slots in
  checki "no completed instance" 0 (Trace.instance_count tr 1)

let test_first_at_or_after () =
  let s = sched_of [ 0; -1 ] in
  let tr = Trace.of_schedule comm s ~horizon:10 in
  (match Trace.first_at_or_after tr ~elem:0 ~time:3 with
  | Some i -> checki "next a at 4" 4 i.Trace.start
  | None -> Alcotest.fail "expected an instance");
  (match Trace.first_at_or_after tr ~elem:0 ~time:0 with
  | Some i -> checki "first a at 0" 0 i.Trace.start
  | None -> Alcotest.fail "expected an instance");
  checkb "none beyond horizon" true
    (Trace.first_at_or_after tr ~elem:0 ~time:9 = None)

let test_nth_instance () =
  let s = sched_of [ 0 ] in
  let tr = Trace.of_schedule comm s ~horizon:5 in
  (match Trace.nth_instance tr ~elem:0 2 with
  | Some i -> checki "third instance at 2" 2 i.Trace.start
  | None -> Alcotest.fail "expected instance 2");
  checkb "out of range" true (Trace.nth_instance tr ~elem:0 7 = None)

let test_all_instances_sorted () =
  let s = sched_of [ 0; 1; 1 ] in
  let tr = Trace.of_schedule comm s ~horizon:6 in
  let all = Trace.all_instances tr in
  checki "four instances" 4 (List.length all);
  let starts = List.map (fun (i : Trace.instance) -> i.start) all in
  checkb "sorted by start" true (starts = List.sort Int.compare starts)

let test_instances_span_cycle_boundary () =
  (* The canonical decomposition pairs c's slots in order of occurrence
     from t=0: for the cycle [c a . c] that yields {0,3}, {4,7}, ... —
     every instance split, which is exactly why Schedule.validate
     rejects boundary-wrapped atomic executions. *)
  let s = sched_of [ 2; 0; -1; 2 ] in
  let tr = Trace.of_schedule comm s ~horizon:8 in
  let insts = Trace.instances tr 2 in
  checki "two complete instances in 8 slots" 2 (Array.length insts);
  checkb "first canonical instance is split" true
    (insts.(0).Trace.slots = [| 0; 3 |])

let test_pipeline_ordered () =
  let s = sched_of [ 0; 1; 1 ] in
  let tr = Trace.of_schedule comm s ~horizon:9 in
  checkb "canonical decomposition is pipeline-ordered" true
    (Trace.pipeline_ordered tr)

let () =
  Alcotest.run "rt_core-schedule"
    [
      ( "schedule",
        [
          Alcotest.test_case "accessors" `Quick test_basic_accessors;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "unroll" `Quick test_unroll;
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "partial execution rejected" `Quick
            test_validate_partial_execution;
          Alcotest.test_case "split atomic rejected" `Quick
            test_validate_split_atomic;
          Alcotest.test_case "unknown element rejected" `Quick
            test_validate_unknown_element;
          Alcotest.test_case "rotate" `Quick test_rotate;
          Alcotest.test_case "concat/repeat" `Quick test_concat_repeat;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "trace",
        [
          Alcotest.test_case "instance grouping" `Quick test_instance_grouping;
          Alcotest.test_case "incomplete dropped" `Quick
            test_incomplete_execution_dropped;
          Alcotest.test_case "first_at_or_after" `Quick test_first_at_or_after;
          Alcotest.test_case "nth_instance" `Quick test_nth_instance;
          Alcotest.test_case "all_instances sorted" `Quick
            test_all_instances_sorted;
          Alcotest.test_case "pipeline ordered" `Quick test_pipeline_ordered;
          Alcotest.test_case "boundary-spanning instances" `Quick
            test_instances_span_cycle_boundary;
        ] );
    ]
