(* Tests for the exact feasibility deciders: the bounded enumeration for
   unit-weight models and the Theorem-1 simulation game for
   single-operation models. *)

open Rt_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let unit_comm names =
  Comm_graph.create ~elements:(List.map (fun n -> (n, 1, true)) names) ~edges:[]

let single name ~comm:_ ~elem ~d =
  Timing.make ~name ~graph:(Task_graph.singleton elem) ~period:d ~deadline:d
    ~kind:Timing.Asynchronous

(* ------------------------------------------------------------------ *)
(* solve_single_ops                                                    *)
(* ------------------------------------------------------------------ *)

let test_game_trivial () =
  let comm = unit_comm [ "a" ] in
  let m =
    Model.make ~comm ~constraints:[ single "c" ~comm ~elem:0 ~d:1 ]
  in
  match (Exact.solve_single_ops m).outcome with
  | Exact.Feasible sched ->
      checkb "all-a schedule" true
        (Array.for_all (( = ) (Schedule.Run 0)) (Schedule.slots sched))
  | _ -> Alcotest.fail "d=1 single op is feasible (run it always)"

let test_game_two_ops_feasible () =
  let m = Rt_workload.Suite.tiny_two_ops in
  match (Exact.solve_single_ops m).outcome with
  | Exact.Feasible sched ->
      checkb "verified by latency analysis" true
        (List.for_all
           (fun c -> Latency.meets_asynchronous m.Model.comm sched c)
           (Model.asynchronous m))
  | _ -> Alcotest.fail "tiny_two_ops is feasible"

let test_game_infeasible () =
  match (Exact.solve_single_ops Rt_workload.Suite.infeasible_pair).outcome with
  | Exact.Infeasible -> ()
  | _ -> Alcotest.fail "two unit ops with d=1 each cannot both be everywhere"

let test_game_weight_exceeds_deadline () =
  let comm =
    Comm_graph.create ~elements:[ ("heavy", 5, false) ] ~edges:[]
  in
  let m =
    Model.make ~comm ~constraints:[ single "c" ~comm ~elem:0 ~d:3 ]
  in
  checkb "immediately infeasible" true
    ((Exact.solve_single_ops m).outcome = Exact.Infeasible)

let test_game_rejects_chains () =
  let comm =
    Comm_graph.create
      ~elements:[ ("a", 1, true); ("b", 1, true) ]
      ~edges:[ ("a", "b") ]
  in
  let m =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"c"
            ~graph:(Task_graph.of_chain [ 0; 1 ])
            ~period:4 ~deadline:4 ~kind:Timing.Asynchronous;
        ]
  in
  checkb "raises on non-single-op" true
    (try
       ignore (Exact.solve_single_ops m);
       false
     with Invalid_argument _ -> true)

let test_game_weighted_pair () =
  (* a: weight 2, d=6; b: weight 1, d=4.  Feasible: e.g. cycle
     a a b . -> check via the solver and verify. *)
  let comm =
    Comm_graph.create
      ~elements:[ ("a", 2, false); ("b", 1, false) ]
      ~edges:[]
  in
  let m =
    Model.make ~comm
      ~constraints:
        [ single "ca" ~comm ~elem:0 ~d:6; single "cb" ~comm ~elem:1 ~d:4 ]
  in
  match (Exact.solve_single_ops m).outcome with
  | Exact.Feasible sched ->
      checkb "schedule well-formed" true
        (Schedule.validate comm sched = Ok ());
      checkb "verified" true
        (List.for_all
           (fun c -> Latency.meets_asynchronous comm sched c)
           m.Model.constraints)
  | _ -> Alcotest.fail "weighted pair should be feasible"

let test_game_shared_element_two_deadlines () =
  (* Two constraints on the same operation with different deadlines:
     the tighter one dominates. *)
  let comm = unit_comm [ "a" ] in
  let m =
    Model.make ~comm
      ~constraints:
        [ single "tight" ~comm ~elem:0 ~d:2; single "loose" ~comm ~elem:0 ~d:9 ]
  in
  match (Exact.solve_single_ops m).outcome with
  | Exact.Feasible sched ->
      checkb "meets the tight bound" true
        (match Latency.latency comm sched (Task_graph.singleton 0) with
        | Some k -> k <= 2
        | None -> false)
  | _ -> Alcotest.fail "shared element should be feasible"

let test_game_no_constraints () =
  let comm = unit_comm [ "a" ] in
  let m = Model.make ~comm ~constraints:[] in
  checkb "vacuously feasible" true
    (match (Exact.solve_single_ops m).outcome with
    | Exact.Feasible _ -> true
    | _ -> false)

let test_game_state_budget () =
  let g = Rt_graph.Prng.create 5 in
  let m =
    Rt_workload.Model_gen.single_op_model g ~n_constraints:6 ~max_weight:4
      ~target_ratio_sum:0.9
  in
  match (Exact.solve_single_ops ~max_states:3 m).outcome with
  | Exact.Unknown _ -> ()
  | Exact.Feasible _ -> Alcotest.fail "3 states cannot suffice here"
  | Exact.Infeasible -> Alcotest.fail "must not claim infeasible when truncated"
  | Exact.Timeout _ -> Alcotest.fail "no budget was supplied"

(* ------------------------------------------------------------------ *)
(* enumerate                                                           *)
(* ------------------------------------------------------------------ *)

let test_enumerate_tiny () =
  match (Exact.enumerate Rt_workload.Suite.tiny_two_ops).outcome with
  | Exact.Feasible sched ->
      let m = Rt_workload.Suite.tiny_two_ops in
      checkb "verified" true
        (List.for_all
           (fun c -> Latency.meets_asynchronous m.Model.comm sched c)
           (Model.asynchronous m))
  | _ -> Alcotest.fail "tiny_two_ops should enumerate to feasible"

let test_enumerate_finds_minimal_length () =
  (* Single unit op with d=3: length-1 schedule [a] works. *)
  let comm = unit_comm [ "a" ] in
  let m = Model.make ~comm ~constraints:[ single "c" ~comm ~elem:0 ~d:3 ] in
  match (Exact.enumerate m).outcome with
  | Exact.Feasible sched -> checki "length 1" 1 (Schedule.length sched)
  | _ -> Alcotest.fail "expected feasible"

let test_enumerate_unknown_when_infeasible () =
  (* The bounded DFS cannot rule longer schedules out, so it must stay
     at Unknown; the game engine exhausts the finite state space and is
     entitled to the definitive verdict. *)
  (match
     (Exact.enumerate ~engine:`Dfs ~max_len:6 Rt_workload.Suite.infeasible_pair)
       .outcome
   with
  | Exact.Unknown _ -> ()
  | Exact.Feasible _ -> Alcotest.fail "infeasible pair cannot be feasible"
  | Exact.Infeasible -> Alcotest.fail "bounded search reports Unknown"
  | Exact.Timeout _ -> Alcotest.fail "no budget was supplied");
  match (Exact.enumerate Rt_workload.Suite.infeasible_pair).outcome with
  | Exact.Infeasible -> ()
  | Exact.Feasible _ -> Alcotest.fail "infeasible pair cannot be feasible"
  | Exact.Timeout m | Exact.Unknown m ->
      Alcotest.failf "game engine should prove it: %s" m

let test_enumerate_rejects_weights () =
  let comm = Comm_graph.create ~elements:[ ("w", 2, true) ] ~edges:[] in
  let m = Model.make ~comm ~constraints:[ single "c" ~comm ~elem:0 ~d:4 ] in
  checkb "raises on non-unit weight" true
    (try
       ignore (Exact.enumerate m);
       false
     with Invalid_argument _ -> true)

let test_enumerate_chain () =
  let comm =
    Comm_graph.create
      ~elements:[ ("a", 1, true); ("b", 1, true); ("c", 1, true) ]
      ~edges:[ ("a", "b"); ("b", "c") ]
  in
  let chain_model d =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"chain"
            ~graph:(Task_graph.of_chain [ 0; 1; 2 ])
            ~period:d ~deadline:d ~kind:Timing.Asynchronous;
        ]
  in
  (* d=5 is feasible: the cycle [a b c] has latency exactly 5.  Both
     engines must find a verified schedule. *)
  List.iter
    (fun engine ->
      match (Exact.enumerate ~engine ~max_len:3 (chain_model 5)).outcome with
      | Exact.Feasible sched ->
          checkb "meets the chain constraint" true
            (List.for_all
               (fun c -> Latency.meets_asynchronous comm sched c)
               (chain_model 5).Model.constraints)
      | _ -> Alcotest.fail "a->b->c with d=5 has the cycle [a b c]")
    [ `Dfs; `Game ];
  (* d=4 is infeasible for any length: every 4-window needs an 'a' in
     its first two slots and a 'c' in its last two, forcing densities
     that leave no room for b.  The bounded search must not find one;
     the game engine must prove the infeasibility. *)
  (match (Exact.enumerate ~engine:`Dfs ~max_len:8 (chain_model 4)).outcome with
  | Exact.Unknown _ -> ()
  | Exact.Feasible s ->
      Alcotest.failf "impossible schedule found: %s"
        (Format.asprintf "%a" Schedule.pp s)
  | Exact.Infeasible -> Alcotest.fail "bounded search reports Unknown"
  | Exact.Timeout _ -> Alcotest.fail "no budget was supplied");
  match (Exact.enumerate (chain_model 4)).outcome with
  | Exact.Infeasible -> ()
  | Exact.Feasible s ->
      Alcotest.failf "impossible schedule found: %s"
        (Format.asprintf "%a" Schedule.pp s)
  | Exact.Timeout m | Exact.Unknown m ->
      Alcotest.failf "game engine should prove it: %s" m

(* ------------------------------------------------------------------ *)
(* enumerate_atomic                                                    *)
(* ------------------------------------------------------------------ *)

let test_atomic_weighted_pair () =
  let comm =
    Comm_graph.create ~elements:[ ("a", 2, false); ("b", 1, false) ] ~edges:[]
  in
  let m =
    Model.make ~comm
      ~constraints:
        [ single "ca" ~comm ~elem:0 ~d:6; single "cb" ~comm ~elem:1 ~d:4 ]
  in
  match (Exact.enumerate_atomic ~max_len:8 m).outcome with
  | Exact.Feasible sched ->
      checkb "well-formed" true (Schedule.validate comm sched = Ok ());
      checkb "verified" true
        (List.for_all
           (fun c -> Latency.meets_asynchronous comm sched c)
           m.Model.constraints)
  | _ -> Alcotest.fail "weighted atomic pair should be feasible"

let test_atomic_agrees_with_game () =
  (* On random single-op models with small deadlines the two complete
     deciders must agree (the game is exact; the enumeration is exact
     for atomic elements up to its length bound). *)
  let g = Rt_graph.Prng.create 77 in
  for _ = 1 to 20 do
    let m =
      Rt_workload.Model_gen.single_op_model ~max_deadline:8 g ~n_constraints:2
        ~max_weight:3 ~target_ratio_sum:(0.4 +. Rt_graph.Prng.float g 0.8)
    in
    let game = (Exact.solve_single_ops m).outcome in
    let enum = (Exact.enumerate_atomic ~max_len:10 m).outcome in
    match (game, enum) with
    | Exact.Feasible _, Exact.Feasible _ -> ()
    | Exact.Infeasible, (Exact.Unknown _ | Exact.Infeasible) -> ()
    | Exact.Feasible _, Exact.Unknown _ ->
        (* Longer schedules than the bound may be needed. *)
        ()
    | Exact.Infeasible, Exact.Feasible s ->
        Alcotest.failf "game infeasible but atomic enumeration found %s"
          (Format.asprintf "%a" Schedule.pp s)
    | (Exact.Unknown _ | Exact.Feasible _), Exact.Infeasible ->
        Alcotest.fail "bounded enumeration must not claim Infeasible"
    | Exact.Unknown _, _ -> Alcotest.fail "state budget should not bind"
    | Exact.Timeout _, _ | _, Exact.Timeout _ ->
        Alcotest.fail "no budget was supplied"
  done

let test_atomic_keeps_blocks_contiguous () =
  let comm = Comm_graph.create ~elements:[ ("a", 3, false) ] ~edges:[] in
  let m = Model.make ~comm ~constraints:[ single "c" ~comm ~elem:0 ~d:6 ] in
  match (Exact.enumerate_atomic ~max_len:6 m).outcome with
  | Exact.Feasible sched ->
      (* Every run of a must have length a multiple of 3 (validate
         enforces contiguity for atomic elements). *)
      checkb "contiguous blocks" true (Schedule.validate comm sched = Ok ())
  | _ -> Alcotest.fail "single atomic op with d=2w is feasible"

(* ------------------------------------------------------------------ *)
(* Agreement between the two deciders, and with the witness            *)
(* ------------------------------------------------------------------ *)

let test_deciders_agree_on_singles () =
  let g = Rt_graph.Prng.create 31 in
  for _ = 1 to 25 do
    let n = 1 + Rt_graph.Prng.int g 3 in
    let ratio = 0.3 +. Rt_graph.Prng.float g 1.2 in
    let m =
      Rt_workload.Model_gen.single_op_model g ~n_constraints:n ~max_weight:1
        ~target_ratio_sum:ratio
    in
    let game = (Exact.solve_single_ops m).outcome in
    let enum = (Exact.enumerate ~max_len:8 m).outcome in
    match (game, enum) with
    | Exact.Feasible _, Exact.Feasible _ -> ()
    | Exact.Infeasible, (Exact.Unknown _ | Exact.Infeasible) -> ()
    | Exact.Feasible _, Exact.Unknown _ ->
        (* The game may find longer schedules than the enumeration
           bound. *)
        ()
    | Exact.Feasible _, Exact.Infeasible ->
        Alcotest.fail "bounded enumeration must never report Infeasible"
    | Exact.Infeasible, Exact.Feasible s ->
        Alcotest.failf "game says infeasible but enumeration found %s"
          (Format.asprintf "%a" Schedule.pp s)
    | Exact.Unknown _, _ -> Alcotest.fail "state budget should not bind here"
    | Exact.Timeout _, _ | _, Exact.Timeout _ ->
        Alcotest.fail "no budget was supplied"
  done

let test_three_partition_witness_matches_game () =
  (* On a small yes-instance the game must agree with the constructed
     witness that the reduction model is feasible. *)
  let g = Rt_graph.Prng.create 4 in
  let items = Rt_workload.Npc.three_partition_yes g ~m:1 ~b:13 in
  (match Rt_workload.Npc.three_partition_solve items ~b:13 with
  | None -> Alcotest.fail "generated yes-instance must solve"
  | Some triples ->
      let model, witness = Rt_workload.Npc.witness_schedule items ~b:13 triples in
      checkb "witness verifies" true
        (Latency.all_ok (Latency.verify model witness));
      match (Exact.solve_single_ops ~max_states:2_000_000 model).outcome with
      | Exact.Feasible sched ->
          checkb "game schedule verifies too" true
            (Latency.all_ok (Latency.verify model sched))
      | Exact.Infeasible -> Alcotest.fail "game contradicts the witness"
      | Exact.Timeout msg | Exact.Unknown msg ->
          Alcotest.failf "game ran out of budget: %s" msg)

let () =
  Alcotest.run "rt_core-exact"
    [
      ( "simulation-game",
        [
          Alcotest.test_case "trivial" `Quick test_game_trivial;
          Alcotest.test_case "two ops feasible" `Quick
            test_game_two_ops_feasible;
          Alcotest.test_case "infeasible pair" `Quick test_game_infeasible;
          Alcotest.test_case "weight > deadline" `Quick
            test_game_weight_exceeds_deadline;
          Alcotest.test_case "rejects chains" `Quick test_game_rejects_chains;
          Alcotest.test_case "weighted pair" `Quick test_game_weighted_pair;
          Alcotest.test_case "shared element" `Quick
            test_game_shared_element_two_deadlines;
          Alcotest.test_case "no constraints" `Quick test_game_no_constraints;
          Alcotest.test_case "state budget" `Quick test_game_state_budget;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "tiny" `Quick test_enumerate_tiny;
          Alcotest.test_case "minimal length" `Quick
            test_enumerate_finds_minimal_length;
          Alcotest.test_case "unknown when infeasible" `Quick
            test_enumerate_unknown_when_infeasible;
          Alcotest.test_case "rejects weights" `Quick
            test_enumerate_rejects_weights;
          Alcotest.test_case "chain" `Quick test_enumerate_chain;
        ] );
      ( "enumerate-atomic",
        [
          Alcotest.test_case "weighted pair" `Quick test_atomic_weighted_pair;
          Alcotest.test_case "agrees with game" `Slow
            test_atomic_agrees_with_game;
          Alcotest.test_case "contiguous blocks" `Quick
            test_atomic_keeps_blocks_contiguous;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "deciders agree" `Slow
            test_deciders_agree_on_singles;
          Alcotest.test_case "3-partition witness" `Slow
            test_three_partition_witness_matches_game;
        ] );
    ]
