(* Tests for the process-based baseline: Process, Dbf (EDF processor
   demand), Fixed_priority (RM/DM response times), Sporadic
   transformation, Monitor blocking, Codegen and From_model. *)

open Rt_process

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let per name c p d = Process.make ~name ~c ~p ~d ~kind:Process.Periodic_process
let spo name c p d = Process.make ~name ~c ~p ~d ~kind:Process.Sporadic_process

(* ------------------------------------------------------------------ *)
(* Process                                                             *)
(* ------------------------------------------------------------------ *)

let test_process_metrics () =
  let p = per "t" 2 10 5 in
  checkf "utilization" 0.2 (Process.utilization p);
  checkf "density" 0.4 (Process.density p);
  checkb "constrained" true (Process.constrained_deadline p);
  checkb "not implicit" false (Process.implicit_deadline p);
  checki "hyperperiod" 20 (Process.hyperperiod [ per "a" 1 4 4; per "b" 1 10 10 ])

let test_process_validation () =
  Alcotest.check_raises "zero c"
    (Invalid_argument "Process.make: computation time must be positive")
    (fun () -> ignore (per "t" 0 10 10))

(* ------------------------------------------------------------------ *)
(* Dbf / EDF processor-demand criterion                                *)
(* ------------------------------------------------------------------ *)

let test_dbf_values () =
  let p = per "t" 2 10 6 in
  checki "before first deadline" 0 (Dbf.dbf p 5);
  checki "at first deadline" 2 (Dbf.dbf p 6);
  checki "after one period" 4 (Dbf.dbf p 16);
  checki "total demand" 4 (Dbf.total_demand [ p; p ] 6)

let test_edf_feasible_classic () =
  (* Implicit deadlines, U = 1.0: EDF feasible. *)
  checkb "U=1 implicit" true
    (Dbf.edf_feasible [ per "a" 1 2 2; per "b" 2 4 4 ]);
  (* U > 1: infeasible. *)
  checkb "U>1" false (Dbf.edf_feasible [ per "a" 3 4 4; per "b" 2 4 4 ]);
  (* Constrained deadlines can be infeasible below U=1. *)
  checkb "tight deadlines" false
    (Dbf.edf_feasible [ per "a" 2 10 2; per "b" 2 10 2 ])

let test_edf_matches_simulation () =
  (* The analytical verdict must agree with simulating EDF over the
     hyperperiod (synchronous release is the worst case). *)
  let g = Rt_graph.Prng.create 21 in
  for _ = 1 to 40 do
    let n = 1 + Rt_graph.Prng.int g 3 in
    let procs =
      List.init n (fun i ->
          let p = List.nth [ 4; 6; 8; 12 ] (Rt_graph.Prng.int g 4) in
          let c = 1 + Rt_graph.Prng.int g 3 in
          let d = max c (p - Rt_graph.Prng.int g 3) in
          per (Printf.sprintf "t%d" i) c p d)
    in
    let analytical = Dbf.edf_feasible procs in
    let simulated =
      Rt_sim.Proc_sim.schedulable_by_simulation Rt_sim.Proc_sim.Edf procs
    in
    if analytical <> simulated then
      Alcotest.failf "disagreement on %s: dbf=%b sim=%b"
        (String.concat ","
           (List.map (Format.asprintf "%a" Process.pp) procs))
        analytical simulated
  done

let test_first_overload_point () =
  match Dbf.first_overload [ per "a" 2 10 2; per "b" 2 10 2 ] with
  | Some t -> checki "overload at the common deadline" 2 t
  | None -> Alcotest.fail "expected overload"

(* ------------------------------------------------------------------ *)
(* Fixed_priority                                                      *)
(* ------------------------------------------------------------------ *)

let test_priority_order () =
  let a = per "a" 1 10 4 and b = per "b" 1 4 8 in
  (match Fixed_priority.priorities Fixed_priority.Rate_monotonic [ a; b ] with
  | [ first; _ ] -> checkb "RM: smaller period first" true (first.Process.name = "b")
  | _ -> Alcotest.fail "two processes expected");
  match Fixed_priority.priorities Fixed_priority.Deadline_monotonic [ a; b ] with
  | [ first; _ ] -> checkb "DM: smaller deadline first" true (first.Process.name = "a")
  | _ -> Alcotest.fail "two processes expected"

let test_response_time_textbook () =
  (* Classic example: c/p = 1/4, 2/6, 3/12 under RM. *)
  let t1 = per "t1" 1 4 4 and t2 = per "t2" 2 6 6 and t3 = per "t3" 3 12 12 in
  let procs = [ t1; t2; t3 ] in
  let rt p =
    match Fixed_priority.response_time Fixed_priority.Rate_monotonic procs p with
    | Some r -> r
    | None -> -1
  in
  checki "R(t1)" 1 (rt t1);
  checki "R(t2)" 3 (rt t2);
  (* t3: R = 3 + ceil(R/4)*1 + ceil(R/6)*2; fixed point at 12? 
     R0=3+1+2=6 -> 3+2+2=7 -> 3+2+4=9 -> 3+3+4=10 -> 3+3+4=10. *)
  checki "R(t3)" 10 (rt t3);
  checkb "schedulable" true
    (Fixed_priority.schedulable Fixed_priority.Rate_monotonic procs)

let test_response_time_with_blocking () =
  let t1 = per "t1" 1 4 4 and t2 = per "t2" 2 8 8 in
  let blocking p = if p.Process.name = "t1" then 2 else 0 in
  (match
     Fixed_priority.response_time ~blocking Fixed_priority.Rate_monotonic
       [ t1; t2 ] t1
   with
  | Some r -> checki "blocked response" 3 r
  | None -> Alcotest.fail "t1 should still fit");
  checkb "still schedulable with blocking" true
    (Fixed_priority.schedulable ~blocking Fixed_priority.Rate_monotonic
       [ t1; t2 ])

let test_response_time_unschedulable () =
  let t1 = per "t1" 2 4 4 and t2 = per "t2" 3 5 5 in
  checkb "over RM bound and actually unschedulable" false
    (Fixed_priority.schedulable Fixed_priority.Rate_monotonic [ t1; t2 ])

let test_liu_layland () =
  checkf "n=1" 1.0 (Fixed_priority.liu_layland_bound 1);
  checkb "n=2 ~ 0.828" true
    (abs_float (Fixed_priority.liu_layland_bound 2 -. 0.8284271) < 1e-6);
  checkb "monotone decreasing" true
    (Fixed_priority.liu_layland_bound 10 < Fixed_priority.liu_layland_bound 2);
  checkb "tends to ln 2" true
    (Fixed_priority.liu_layland_bound 1000 > 0.6931
    && Fixed_priority.liu_layland_bound 1000 < 0.694);
  checkb "utilization test" true
    (Fixed_priority.utilization_test [ per "a" 1 4 4; per "b" 1 5 5 ])

let test_rm_vs_sim_agreement () =
  (* Response-time analysis is exact for synchronous constrained-
     deadline sets: cross-check against simulation. *)
  let g = Rt_graph.Prng.create 8 in
  for _ = 1 to 40 do
    let n = 1 + Rt_graph.Prng.int g 3 in
    let procs =
      List.init n (fun i ->
          let p = List.nth [ 4; 5; 8; 10; 20 ] (Rt_graph.Prng.int g 5) in
          let c = 1 + Rt_graph.Prng.int g 3 in
          per (Printf.sprintf "t%d" i) c p p)
    in
    let analytical =
      Fixed_priority.schedulable Fixed_priority.Rate_monotonic procs
    in
    let simulated =
      Rt_sim.Proc_sim.schedulable_by_simulation
        (Rt_sim.Proc_sim.Fixed Fixed_priority.Rate_monotonic)
        procs
    in
    if analytical <> simulated then
      Alcotest.failf "RM disagreement on %s"
        (String.concat "," (List.map (Format.asprintf "%a" Process.pp) procs))
  done

(* ------------------------------------------------------------------ *)
(* Sporadic                                                            *)
(* ------------------------------------------------------------------ *)

let test_sporadic_transformation () =
  let s = spo "s" 2 20 9 in
  match Sporadic.to_periodic s with
  | None -> Alcotest.fail "transformable"
  | Some p ->
      checki "period min(p, d-c+1)" 8 p.Process.p;
      checki "deadline c" 2 p.Process.d;
      checkb "covers the original deadline" true
        (Sporadic.covers ~original:s ~polled:p)

let test_sporadic_impossible () =
  checkb "d < c untransformable" true (Sporadic.to_periodic (spo "s" 5 9 3) = None);
  checkb "set propagates failure" true
    (Sporadic.transform_set [ per "a" 1 4 4; spo "s" 5 9 3 ] = None)

let test_sporadic_periodic_passthrough () =
  let p = per "a" 1 4 4 in
  checkb "periodic unchanged" true (Sporadic.to_periodic p = Some p)

(* ------------------------------------------------------------------ *)
(* Monitor / Codegen / From_model                                      *)
(* ------------------------------------------------------------------ *)

let example = Rt_workload.Suite.control_system Rt_workload.Suite.default_params

let test_monitors_of_example () =
  let monitors = Monitor.of_model example in
  let names = List.map (fun m -> m.Monitor.element_name) monitors in
  checkb "f_s guarded" true (List.mem "f_s" names);
  checkb "f_k guarded" true (List.mem "f_k" names);
  checkb "f_x not guarded" false (List.mem "f_x" names);
  let fs = List.find (fun m -> m.Monitor.element_name = "f_s") monitors in
  checki "critical section = weight" 2 fs.Monitor.critical_section;
  let pipelined = Monitor.of_model ~pipelined:true example in
  let fs' = List.find (fun m -> m.Monitor.element_name = "f_s") pipelined in
  checki "pipelining shrinks critical section" 1 fs'.Monitor.critical_section;
  checki "blocking bound for px" 2
    (Monitor.blocking_bound monitors ~process:"px");
  checki "no blocking for outsider" 0
    (Monitor.blocking_bound monitors ~process:"nobody");
  checki "max critical section" 2 (Monitor.max_critical_section monitors)

let test_codegen () =
  let monitors = Monitor.of_model example in
  let px = Rt_core.Model.find example "px" in
  let prog = Codegen.of_constraint example ~monitors px in
  checki "wcet" 4 prog.Codegen.wcet;
  (* f_x unguarded; f_s and f_k guarded: call steps = 3, enters = 2. *)
  checki "f_s called once" 1
    (Codegen.call_count prog (Rt_core.Comm_graph.id_of_name example.Rt_core.Model.comm "f_s"));
  let enters =
    List.length
      (List.filter
         (function Codegen.Enter _ -> true | _ -> false)
         prog.Codegen.steps)
  in
  checki "two guarded ops" 2 enters;
  let rendered = Codegen.render example prog in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  checkb "renders monitor calls" true (contains rendered "enter(f_s);")

let test_from_model_translation () =
  let tr = From_model.translate example in
  checki "three processes" 3 (List.length tr.From_model.processes);
  let pz = List.find (fun p -> p.Process.name = "pz") tr.From_model.processes in
  checkb "pz sporadic" true (pz.Process.kind = Process.Sporadic_process);
  checki "pz wcet" 3 pz.Process.c;
  checkb "example EDF-schedulable as processes" true
    (From_model.edf_schedulable tr)

let test_redundant_work () =
  let shared =
    Rt_workload.Suite.control_system_equal_rates
      Rt_workload.Suite.default_params
  in
  let tr = From_model.translate shared in
  (* Per hyperperiod (10): px and py both run f_s (2) and f_k (1):
     merged saves 3 units. *)
  checki "redundant work" 3 (From_model.redundant_work shared tr);
  let distinct = From_model.translate example in
  checki "no redundancy at distinct rates" 0
    (From_model.redundant_work example distinct)

let () =
  Alcotest.run "rt_process"
    [
      ( "process",
        [
          Alcotest.test_case "metrics" `Quick test_process_metrics;
          Alcotest.test_case "validation" `Quick test_process_validation;
        ] );
      ( "dbf",
        [
          Alcotest.test_case "values" `Quick test_dbf_values;
          Alcotest.test_case "classic verdicts" `Quick test_edf_feasible_classic;
          Alcotest.test_case "matches simulation" `Slow
            test_edf_matches_simulation;
          Alcotest.test_case "first overload" `Quick test_first_overload_point;
        ] );
      ( "fixed_priority",
        [
          Alcotest.test_case "priority order" `Quick test_priority_order;
          Alcotest.test_case "textbook response times" `Quick
            test_response_time_textbook;
          Alcotest.test_case "blocking" `Quick test_response_time_with_blocking;
          Alcotest.test_case "unschedulable" `Quick
            test_response_time_unschedulable;
          Alcotest.test_case "liu-layland" `Quick test_liu_layland;
          Alcotest.test_case "matches simulation" `Slow
            test_rm_vs_sim_agreement;
        ] );
      ( "sporadic",
        [
          Alcotest.test_case "transformation" `Quick
            test_sporadic_transformation;
          Alcotest.test_case "impossible" `Quick test_sporadic_impossible;
          Alcotest.test_case "periodic passthrough" `Quick
            test_sporadic_periodic_passthrough;
        ] );
      ( "naive-implementation",
        [
          Alcotest.test_case "monitors" `Quick test_monitors_of_example;
          Alcotest.test_case "codegen" `Quick test_codegen;
          Alcotest.test_case "from_model" `Quick test_from_model_translation;
          Alcotest.test_case "redundant work" `Quick test_redundant_work;
        ] );
    ]
