(* Daemon-layer tests: canonical-form invariance (the memo key of
   rtsynd), key injectivity over the example suite, journal torn-tail
   and corruption semantics, and engine crash-replay.  The canonical
   form must be invariant under α-renaming of elements and constraints,
   element id permutation and constraint reordering — that is exactly
   what makes the cross-request memo sound for renamed tenants. *)

open Rt_core
module Canon = Rt_daemon.Canon
module Journal = Rt_daemon.Journal
module Engine = Rt_daemon.Engine

let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Canonical form                                                      *)
(* ------------------------------------------------------------------ *)

let shuffle prng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Rt_graph.Prng.int prng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done

(* α-rename every element and constraint, permute the element ids and
   reorder the constraint list — structurally the same model. *)
let renamed_permuted prng salt (m : Model.t) =
  let g = m.Model.comm in
  let n = Rt_base.Comm_graph.n_elements g in
  let perm = Array.init n Fun.id in
  shuffle prng perm;
  let inv = Array.make n 0 in
  Array.iteri (fun old_id new_id -> inv.(new_id) <- old_id) perm;
  let name new_id = Printf.sprintf "t%d_e%d" salt new_id in
  let elements =
    List.init n (fun new_id ->
        let old_id = inv.(new_id) in
        ( name new_id,
          Rt_base.Comm_graph.weight g old_id,
          Rt_base.Comm_graph.pipelinable g old_id ))
  in
  let edges =
    List.map
      (fun (u, v) -> (name perm.(u), name perm.(v)))
      (Rt_graph.Digraph.edges (Rt_base.Comm_graph.graph g))
  in
  let comm = Rt_base.Comm_graph.create ~elements ~edges in
  let constraints =
    List.mapi
      (fun i (c : Timing.t) ->
        let tg =
          Rt_base.Task_graph.map_elements c.graph ~f:(fun e -> perm.(e))
        in
        let c' =
          Timing.make
            ~name:(Printf.sprintf "t%d_c%d" salt i)
            ~graph:tg ~period:c.period ~deadline:c.deadline ~kind:c.kind
        in
        if c.offset = 0 || Timing.is_asynchronous c then c'
        else Timing.with_offset c' c.offset)
      m.Model.constraints
  in
  let arr = Array.of_list constraints in
  shuffle prng arr;
  Model.make ~comm ~constraints:(Array.to_list arr)

let random_model prng i =
  match i mod 4 with
  | 0 ->
      Rt_workload.Model_gen.single_op_model prng
        ~n_constraints:(2 + Rt_graph.Prng.int prng 3)
        ~max_weight:3 ~target_ratio_sum:0.8
  | 1 ->
      Rt_workload.Model_gen.theorem3_model prng
        ~n_constraints:(2 + Rt_graph.Prng.int prng 3)
        ~max_weight:2
  | 2 ->
      Rt_workload.Model_gen.shared_block_model prng
        ~n_pairs:(1 + Rt_graph.Prng.int prng 2)
        ~shared_weight:2 ~private_weight:1 ~period:16
  | _ ->
      Rt_workload.Model_gen.dag_model prng
        ~n_constraints:(2 + Rt_graph.Prng.int prng 2)
        ~utilization:0.5 ~periods:[ 10; 12; 20 ]

let test_canon_invariance () =
  let prng = Rt_graph.Prng.create 4242 in
  for i = 1 to 60 do
    let m = random_model prng i in
    let key = (Canon.of_model m).Canon.key in
    for salt = 1 to 3 do
      let m' = renamed_permuted prng ((100 * i) + salt) m in
      checks
        (Printf.sprintf "key invariant under renaming (model %d salt %d)" i
           salt)
        key
        (Canon.of_model m').Canon.key
    done
  done

let test_canon_no_collisions () =
  let ps = Rt_workload.Suite.default_params in
  let suite =
    [
      ("control", Rt_workload.Suite.control_system ps);
      ("control_equal_rates", Rt_workload.Suite.control_system_equal_rates ps);
      ("tiny_two_ops", Rt_workload.Suite.tiny_two_ops);
      ("exact_stress_2", Rt_workload.Suite.exact_stress ~n_constraints:2 ());
      ("exact_stress_3", Rt_workload.Suite.exact_stress ~n_constraints:3 ());
      ("replicated_2", Rt_workload.Suite.replicated_control ~n:2);
      ("replicated_3", Rt_workload.Suite.replicated_control ~n:3);
      ("infeasible_pair", Rt_workload.Suite.infeasible_pair);
    ]
  in
  let keyed =
    List.map (fun (n, m) -> (n, (Canon.of_model m).Canon.key)) suite
  in
  List.iteri
    (fun i (ni, ki) ->
      List.iteri
        (fun j (nj, kj) ->
          if i < j then
            checkb
              (Printf.sprintf "distinct models %s / %s do not collide" ni nj)
              false (String.equal ki kj))
        keyed)
    keyed

let test_canon_schedule_roundtrip () =
  let m = Rt_workload.Suite.control_system Rt_workload.Suite.default_params in
  match Synthesis.synthesize m with
  | Error e -> Alcotest.failf "synthesize: %a" Synthesis.pp_error e
  | Ok plan ->
      let mu = plan.Synthesis.model_used in
      let sched = plan.Synthesis.schedule in
      let cn = Canon.of_model mu in
      let slots = Canon.canonical_slots cn sched in
      (match Canon.schedule_of_slots cn slots with
      | None -> Alcotest.fail "schedule_of_slots refused its own slots"
      | Some sched' ->
          checks "schedule survives the canonical round trip"
            (Rt_base.Schedule.to_string mu.Model.comm sched)
            (Rt_base.Schedule.to_string mu.Model.comm sched'));
      (* and the canonical slots are themselves renaming-invariant up
         to the element relabelling: same multiset of indices *)
      let sorted a =
        let c = Array.copy a in
        Array.sort compare c;
        c
      in
      checkb "canonical slots cover the same work" true
        (sorted slots = sorted (Canon.canonical_slots cn sched))

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let test_journal_digest () =
  let d = Journal.digest_string in
  checks "digest is deterministic" (d "hello") (d "hello");
  checkb "distinct payloads get distinct digests" false
    (String.equal (d "hello") (d "hello "));
  checkb "digest carries the fnv1a prefix" true
    (String.length (d "") > 6 && String.sub (d "") 0 6 = "fnv1a:")

(* ------------------------------------------------------------------ *)
(* Engine: fresh start, memo, crash replay, corruption refusal         *)
(* ------------------------------------------------------------------ *)

let base_spec =
  {|system "base" {
  element f_x weight 1 pipelinable;
  element f_y weight 1 pipelinable;
  constraint px periodic period 10 deadline 10 { f_x; }
}|}

let with_temp_journal f =
  let path = Filename.temp_file "rtsynd_test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let decl_q name =
  Printf.sprintf "constraint %s asynchronous separation 10 deadline 6 { f_x; }"
    name

let admit_path eng decl =
  match Engine.admit ~level:Engine.Full eng decl with
  | Engine.Admitted { path; _ } -> path
  | Engine.Analytic_only _ -> Alcotest.fail "unexpected analytic-only answer"
  | Engine.Rejected ds -> Alcotest.failf "rejected: %s" (String.concat "; " ds)
  | Engine.Timed_out r -> Alcotest.failf "timed out: %s" r
  | Engine.Check_failed ds ->
      Alcotest.failf "check failed: %s" (String.concat "; " ds)
  | Engine.Journal_failed e -> Alcotest.failf "journal failed: %s" e

let test_engine_memo_and_replay () =
  with_temp_journal @@ fun journal ->
  let digest_before_crash =
    match Engine.create ~journal ~spec:base_spec () with
    | Error e -> Alcotest.failf "fresh create: %s" e
    | Ok eng ->
        checks "first admit synthesizes" "synth" (admit_path eng (decl_q "q"));
        (match Engine.retire eng "q" with
        | Engine.Admitted _ -> ()
        | _ -> Alcotest.fail "retire failed");
        (* α-renamed tenant: same canonical form, must hit the memo *)
        checks "renamed tenant hits the memo" "memo"
          (admit_path eng (decl_q "tenant_b"));
        let d = Rt_check.Certificate.digest_of_model (Engine.model eng) in
        Engine.close eng;
        d
  in
  (* kill -9 equivalent: no snapshot, no graceful shutdown — replay *)
  (match Engine.create ~journal ~spec:base_spec () with
  | Error e -> Alcotest.failf "replay create: %s" e
  | Ok eng ->
      checks "replay reaches the pre-crash digest" digest_before_crash
        (Rt_check.Certificate.digest_of_model (Engine.model eng));
      (match Engine.reverify eng with
      | Ok _ -> ()
      | Error ds ->
          Alcotest.failf "reverify after replay: %s" (String.concat "; " ds));
      checkb "memo reseeded from the journal" true (Engine.memo_size eng > 0);
      Engine.close eng);
  (* a torn tail (partial last line) is discarded, not fatal *)
  let oc = open_out_gen [ Open_append ] 0o644 journal in
  output_string oc "{\"torn";
  close_out oc;
  (match Engine.create ~journal ~spec:base_spec () with
  | Error e -> Alcotest.failf "torn tail should replay: %s" e
  | Ok eng ->
      checks "torn tail dropped, state unchanged" digest_before_crash
        (Rt_check.Certificate.digest_of_model (Engine.model eng));
      Engine.close eng);
  (* mid-file corruption is fatal: refuse to start rather than serve
     from an unverifiable state *)
  let lines =
    In_channel.with_open_bin journal (fun ic ->
        String.split_on_char '\n' (In_channel.input_all ic))
    |> List.filter (fun l -> String.trim l <> "")
  in
  (match lines with
  | first :: rest ->
      Out_channel.with_open_bin journal (fun oc ->
          output_string oc (first ^ "\n{corrupt}\n");
          List.iter (fun l -> output_string oc (l ^ "\n")) rest)
  | [] -> Alcotest.fail "journal unexpectedly empty");
  match Engine.create ~journal ~spec:base_spec () with
  | Ok eng ->
      Engine.close eng;
      Alcotest.fail "mid-file corruption must refuse to start"
  | Error _ -> ()

let test_engine_admission_contract () =
  let _, code = Engine.admission Rt_workload.Suite.infeasible_pair in
  Alcotest.check Alcotest.int "impossible model exits 1" 1 code;
  let _, code =
    Engine.admission
      (Rt_workload.Suite.control_system Rt_workload.Suite.default_params)
  in
  checkb "verdict code is one of the contract's {0,1,5}" true
    (List.mem code [ 0; 1; 5 ])

let () =
  Alcotest.run "rt_daemon"
    [
      ( "canon",
        [
          Alcotest.test_case "key invariant under renaming/permutation" `Quick
            test_canon_invariance;
          Alcotest.test_case "no collisions across the example suite" `Quick
            test_canon_no_collisions;
          Alcotest.test_case "canonical schedule round trip" `Quick
            test_canon_schedule_roundtrip;
        ] );
      ( "journal",
        [ Alcotest.test_case "digest" `Quick test_journal_digest ] );
      ( "engine",
        [
          Alcotest.test_case "memo hit, crash replay, corruption refusal"
            `Quick test_engine_memo_and_replay;
          Alcotest.test_case "analytic admission contract" `Quick
            test_engine_admission_contract;
        ] );
    ]
