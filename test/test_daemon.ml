(* Daemon-layer tests: canonical-form invariance (the memo key of
   rtsynd), key injectivity over the example suite, journal torn-tail
   and corruption semantics, and engine crash-replay.  The canonical
   form must be invariant under α-renaming of elements and constraints,
   element id permutation and constraint reordering — that is exactly
   what makes the cross-request memo sound for renamed tenants. *)

open Rt_core
module Canon = Rt_daemon.Canon
module Journal = Rt_daemon.Journal
module Engine = Rt_daemon.Engine
module Framing = Rt_daemon.Framing
module Daemon = Rt_daemon.Daemon
module Transport = Rt_daemon.Transport

let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Canonical form                                                      *)
(* ------------------------------------------------------------------ *)

let shuffle prng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Rt_graph.Prng.int prng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done

(* α-rename every element and constraint, permute the element ids and
   reorder the constraint list — structurally the same model. *)
let renamed_permuted prng salt (m : Model.t) =
  let g = m.Model.comm in
  let n = Rt_base.Comm_graph.n_elements g in
  let perm = Array.init n Fun.id in
  shuffle prng perm;
  let inv = Array.make n 0 in
  Array.iteri (fun old_id new_id -> inv.(new_id) <- old_id) perm;
  let name new_id = Printf.sprintf "t%d_e%d" salt new_id in
  let elements =
    List.init n (fun new_id ->
        let old_id = inv.(new_id) in
        ( name new_id,
          Rt_base.Comm_graph.weight g old_id,
          Rt_base.Comm_graph.pipelinable g old_id ))
  in
  let edges =
    List.map
      (fun (u, v) -> (name perm.(u), name perm.(v)))
      (Rt_graph.Digraph.edges (Rt_base.Comm_graph.graph g))
  in
  let comm = Rt_base.Comm_graph.create ~elements ~edges in
  let constraints =
    List.mapi
      (fun i (c : Timing.t) ->
        let tg =
          Rt_base.Task_graph.map_elements c.graph ~f:(fun e -> perm.(e))
        in
        let c' =
          Timing.make
            ~name:(Printf.sprintf "t%d_c%d" salt i)
            ~graph:tg ~period:c.period ~deadline:c.deadline ~kind:c.kind
        in
        if c.offset = 0 || Timing.is_asynchronous c then c'
        else Timing.with_offset c' c.offset)
      m.Model.constraints
  in
  let arr = Array.of_list constraints in
  shuffle prng arr;
  Model.make ~comm ~constraints:(Array.to_list arr)

let random_model prng i =
  match i mod 4 with
  | 0 ->
      Rt_workload.Model_gen.single_op_model prng
        ~n_constraints:(2 + Rt_graph.Prng.int prng 3)
        ~max_weight:3 ~target_ratio_sum:0.8
  | 1 ->
      Rt_workload.Model_gen.theorem3_model prng
        ~n_constraints:(2 + Rt_graph.Prng.int prng 3)
        ~max_weight:2
  | 2 ->
      Rt_workload.Model_gen.shared_block_model prng
        ~n_pairs:(1 + Rt_graph.Prng.int prng 2)
        ~shared_weight:2 ~private_weight:1 ~period:16
  | _ ->
      Rt_workload.Model_gen.dag_model prng
        ~n_constraints:(2 + Rt_graph.Prng.int prng 2)
        ~utilization:0.5 ~periods:[ 10; 12; 20 ]

let test_canon_invariance () =
  let prng = Rt_graph.Prng.create 4242 in
  for i = 1 to 60 do
    let m = random_model prng i in
    let key = (Canon.of_model m).Canon.key in
    for salt = 1 to 3 do
      let m' = renamed_permuted prng ((100 * i) + salt) m in
      checks
        (Printf.sprintf "key invariant under renaming (model %d salt %d)" i
           salt)
        key
        (Canon.of_model m').Canon.key
    done
  done

let test_canon_no_collisions () =
  let ps = Rt_workload.Suite.default_params in
  let suite =
    [
      ("control", Rt_workload.Suite.control_system ps);
      ("control_equal_rates", Rt_workload.Suite.control_system_equal_rates ps);
      ("tiny_two_ops", Rt_workload.Suite.tiny_two_ops);
      ("exact_stress_2", Rt_workload.Suite.exact_stress ~n_constraints:2 ());
      ("exact_stress_3", Rt_workload.Suite.exact_stress ~n_constraints:3 ());
      ("replicated_2", Rt_workload.Suite.replicated_control ~n:2);
      ("replicated_3", Rt_workload.Suite.replicated_control ~n:3);
      ("infeasible_pair", Rt_workload.Suite.infeasible_pair);
    ]
  in
  let keyed =
    List.map (fun (n, m) -> (n, (Canon.of_model m).Canon.key)) suite
  in
  List.iteri
    (fun i (ni, ki) ->
      List.iteri
        (fun j (nj, kj) ->
          if i < j then
            checkb
              (Printf.sprintf "distinct models %s / %s do not collide" ni nj)
              false (String.equal ki kj))
        keyed)
    keyed

let test_canon_schedule_roundtrip () =
  let m = Rt_workload.Suite.control_system Rt_workload.Suite.default_params in
  match Synthesis.synthesize m with
  | Error e -> Alcotest.failf "synthesize: %a" Synthesis.pp_error e
  | Ok plan ->
      let mu = plan.Synthesis.model_used in
      let sched = plan.Synthesis.schedule in
      let cn = Canon.of_model mu in
      let slots = Canon.canonical_slots cn sched in
      (match Canon.schedule_of_slots cn slots with
      | None -> Alcotest.fail "schedule_of_slots refused its own slots"
      | Some sched' ->
          checks "schedule survives the canonical round trip"
            (Rt_base.Schedule.to_string mu.Model.comm sched)
            (Rt_base.Schedule.to_string mu.Model.comm sched'));
      (* and the canonical slots are themselves renaming-invariant up
         to the element relabelling: same multiset of indices *)
      let sorted a =
        let c = Array.copy a in
        Array.sort compare c;
        c
      in
      checkb "canonical slots cover the same work" true
        (sorted slots = sorted (Canon.canonical_slots cn sched))

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let test_journal_digest () =
  let d = Journal.digest_string in
  checks "digest is deterministic" (d "hello") (d "hello");
  checkb "distinct payloads get distinct digests" false
    (String.equal (d "hello") (d "hello "));
  checkb "digest carries the fnv1a prefix" true
    (String.length (d "") > 6 && String.sub (d "") 0 6 = "fnv1a:")

(* ------------------------------------------------------------------ *)
(* Engine: fresh start, memo, crash replay, corruption refusal         *)
(* ------------------------------------------------------------------ *)

let base_spec =
  {|system "base" {
  element f_x weight 1 pipelinable;
  element f_y weight 1 pipelinable;
  constraint px periodic period 10 deadline 10 { f_x; }
}|}

let with_temp_journal f =
  let path = Filename.temp_file "rtsynd_test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let decl_q name =
  Printf.sprintf "constraint %s asynchronous separation 10 deadline 6 { f_x; }"
    name

let admit_path eng decl =
  match Engine.admit ~level:Engine.Full eng decl with
  | Engine.Admitted { path; _ } -> path
  | Engine.Analytic_only _ -> Alcotest.fail "unexpected analytic-only answer"
  | Engine.Rejected ds -> Alcotest.failf "rejected: %s" (String.concat "; " ds)
  | Engine.Timed_out r -> Alcotest.failf "timed out: %s" r
  | Engine.Check_failed ds ->
      Alcotest.failf "check failed: %s" (String.concat "; " ds)
  | Engine.Journal_failed e -> Alcotest.failf "journal failed: %s" e

let test_engine_memo_and_replay () =
  with_temp_journal @@ fun journal ->
  let digest_before_crash =
    match Engine.create ~journal ~spec:base_spec () with
    | Error e -> Alcotest.failf "fresh create: %s" e
    | Ok eng ->
        checks "first admit synthesizes" "synth" (admit_path eng (decl_q "q"));
        (match Engine.retire eng "q" with
        | Engine.Admitted _ -> ()
        | _ -> Alcotest.fail "retire failed");
        (* α-renamed tenant: same canonical form, must hit the memo *)
        checks "renamed tenant hits the memo" "memo"
          (admit_path eng (decl_q "tenant_b"));
        let d = Rt_check.Certificate.digest_of_model (Engine.model eng) in
        Engine.close eng;
        d
  in
  (* kill -9 equivalent: no snapshot, no graceful shutdown — replay *)
  (match Engine.create ~journal ~spec:base_spec () with
  | Error e -> Alcotest.failf "replay create: %s" e
  | Ok eng ->
      checks "replay reaches the pre-crash digest" digest_before_crash
        (Rt_check.Certificate.digest_of_model (Engine.model eng));
      (match Engine.reverify eng with
      | Ok _ -> ()
      | Error ds ->
          Alcotest.failf "reverify after replay: %s" (String.concat "; " ds));
      checkb "memo reseeded from the journal" true (Engine.memo_size eng > 0);
      Engine.close eng);
  (* a torn tail (partial last line) is discarded, not fatal *)
  let oc = open_out_gen [ Open_append ] 0o644 journal in
  output_string oc "{\"torn";
  close_out oc;
  (match Engine.create ~journal ~spec:base_spec () with
  | Error e -> Alcotest.failf "torn tail should replay: %s" e
  | Ok eng ->
      checks "torn tail dropped, state unchanged" digest_before_crash
        (Rt_check.Certificate.digest_of_model (Engine.model eng));
      Engine.close eng);
  (* mid-file corruption is fatal: refuse to start rather than serve
     from an unverifiable state *)
  let lines =
    In_channel.with_open_bin journal (fun ic ->
        String.split_on_char '\n' (In_channel.input_all ic))
    |> List.filter (fun l -> String.trim l <> "")
  in
  (match lines with
  | first :: rest ->
      Out_channel.with_open_bin journal (fun oc ->
          output_string oc (first ^ "\n{corrupt}\n");
          List.iter (fun l -> output_string oc (l ^ "\n")) rest)
  | [] -> Alcotest.fail "journal unexpectedly empty");
  match Engine.create ~journal ~spec:base_spec () with
  | Ok eng ->
      Engine.close eng;
      Alcotest.fail "mid-file corruption must refuse to start"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Framing: the newline splitter both transports share.  The protocol- *)
(* level contract under attack: torn frames reassemble byte-identical  *)
(* regardless of chunking, oversized frames are dropped with an exact  *)
(* byte count and the stream resynchronizes, two clients' streams are  *)
(* framed independently however their chunks interleave, and EOF mid-  *)
(* frame is reported — never a crash, never a hang.                    *)
(* ------------------------------------------------------------------ *)

(* Cut [payload] into chunks whose sizes cycle through [sizes]. *)
let chunks_of payload sizes =
  let n = String.length payload in
  let sizes = match sizes with [] -> [ 1 ] | s -> List.map (fun x -> 1 + abs x) s in
  let arr = Array.of_list sizes in
  let rec go i k acc =
    if i >= n then List.rev acc
    else
      let len = min arr.(k mod Array.length arr) (n - i) in
      go (i + len) (k + 1) (String.sub payload i len :: acc)
  in
  go 0 0 []

let feed_chunks framer chunks =
  List.concat_map (fun c -> Framing.feed framer c) chunks

let gen_line max_len =
  QCheck.Gen.(
    map
      (fun s ->
        String.map (fun c -> if c = '\n' then ' ' else c) s)
      (string_size (int_bound max_len)))

let gen_stream max_line_len =
  QCheck.Gen.(
    pair
      (list_size (int_range 0 20) (gen_line max_line_len))
      (list_size (int_range 1 8) (int_bound 37)))

let qcheck_framing_torn_frames =
  QCheck.Test.make ~count:200 ~name:"framing reassembles torn frames"
    (QCheck.make (gen_stream 80))
    (fun (lines, sizes) ->
      let payload = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
      let framer = Framing.create ~max_frame:100 in
      let events = feed_chunks framer (chunks_of payload sizes) in
      let got =
        List.map
          (function
            | Framing.Line l -> l
            | Framing.Oversized n ->
                QCheck.Test.fail_reportf "unexpected Oversized %d" n)
          events
      in
      if got <> lines then
        QCheck.Test.fail_reportf "frames did not reassemble: %d in, %d out"
          (List.length lines) (List.length got);
      Framing.finish framer = `Clean)

let qcheck_framing_oversize_resync =
  QCheck.Test.make ~count:200
    ~name:"framing drops oversized frames and resyncs"
    (QCheck.make (gen_stream 120))
    (fun (lines, sizes) ->
      let max_frame = 50 in
      let payload = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
      let framer = Framing.create ~max_frame in
      let events = feed_chunks framer (chunks_of payload sizes) in
      let expected =
        List.map
          (fun l ->
            if String.length l > max_frame then
              Framing.Oversized (String.length l)
            else Framing.Line l)
          lines
      in
      if events <> expected then
        QCheck.Test.fail_reportf
          "oversize events diverged (%d lines, max_frame %d)"
          (List.length lines) max_frame;
      Framing.finish framer = `Clean)

let qcheck_framing_interleaved_clients =
  QCheck.Test.make ~count:200
    ~name:"framing keeps interleaved clients independent"
    (QCheck.make QCheck.Gen.(pair (gen_stream 60) (gen_stream 60)))
    (fun ((lines_a, sizes_a), (lines_b, sizes_b)) ->
      let payload ls = String.concat "" (List.map (fun l -> l ^ "\n") ls) in
      let fa = Framing.create ~max_frame:80
      and fb = Framing.create ~max_frame:80 in
      let ca = chunks_of (payload lines_a) sizes_a
      and cb = chunks_of (payload lines_b) sizes_b in
      (* Interleave the two clients' partial writes chunk by chunk, the
         way the transport's event loop would see them. *)
      let rec interleave ea eb = function
        | [], [] -> (List.rev ea, List.rev eb)
        | a :: ra, [] ->
            interleave (List.rev_append (Framing.feed fa a) ea) eb (ra, [])
        | [], b :: rb ->
            interleave ea (List.rev_append (Framing.feed fb b) eb) ([], rb)
        | a :: ra, b :: rb ->
            let ea = List.rev_append (Framing.feed fa a) ea in
            let eb = List.rev_append (Framing.feed fb b) eb in
            interleave ea eb (ra, rb)
      in
      let ea, eb = interleave [] [] (ca, cb) in
      let only_lines evs =
        List.map
          (function
            | Framing.Line l -> l
            | Framing.Oversized n ->
                QCheck.Test.fail_reportf "unexpected Oversized %d" n)
          evs
      in
      only_lines ea = lines_a && only_lines eb = lines_b)

let qcheck_framing_eof_mid_frame =
  QCheck.Test.make ~count:200 ~name:"framing reports EOF mid-frame"
    (QCheck.make QCheck.Gen.(pair (gen_stream 40) (gen_line 40)))
    (fun ((lines, sizes), tail) ->
      let payload =
        String.concat "" (List.map (fun l -> l ^ "\n") lines) ^ tail
      in
      let framer = Framing.create ~max_frame:64 in
      let events = feed_chunks framer (chunks_of payload sizes) in
      List.length events = List.length lines
      &&
      match Framing.finish framer with
      | `Clean -> String.length tail = 0
      | `Partial n -> n = String.length tail && n > 0)

(* ------------------------------------------------------------------ *)
(* Socket transport: two concurrent clients against a live engine.     *)
(* Partial interleaved writes, per-connection response ordering, an    *)
(* oversized frame answered with a structured error on a still-usable  *)
(* connection, EOF mid-request answered before close, and a graceful   *)
(* shutdown drain (exit 0) — never a crash or a hung connection.       *)
(* ------------------------------------------------------------------ *)

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

(* Read [n] newline-terminated responses with a hard deadline; [buf] is
   the connection's carry-over between calls. *)
let recv_lines fd buf n ~deadline =
  let chunk = Bytes.create 4096 in
  let rec go acc need =
    if need = 0 then List.rev acc
    else
      match String.index_opt !buf '\n' with
      | Some i ->
          let line = String.sub !buf 0 i in
          buf := String.sub !buf (i + 1) (String.length !buf - i - 1);
          go (line :: acc) (need - 1)
      | None ->
          let now = Unix.gettimeofday () in
          if now > deadline then
            Alcotest.failf "recv timed out waiting for %d response(s)" need;
          (match Unix.select [ fd ] [] [] (min 1.0 (deadline -. now)) with
          | [], _, _ -> ()
          | _ -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> Alcotest.fail "connection closed before all responses"
              | got -> buf := !buf ^ Bytes.sub_string chunk 0 got));
          go acc need
  in
  go [] n

let recv_eof fd ~deadline =
  let chunk = Bytes.create 4096 in
  let rec go () =
    let now = Unix.gettimeofday () in
    if now > deadline then Alcotest.fail "expected EOF, got a hang";
    match Unix.select [ fd ] [] [] (min 1.0 (deadline -. now)) with
    | [], _, _ -> go ()
    | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | _ -> go ())
  in
  go ()

let field line key =
  match Rt_obs.Json.parse line with
  | Error e -> Alcotest.failf "unparseable response %s: %s" line e
  | Ok j -> Option.bind (Rt_obs.Json.member key j) Rt_obs.Json.to_string

let response_id line = Option.value ~default:"" (field line "id")

let error_kind line =
  match Rt_obs.Json.parse line with
  | Error _ -> ""
  | Ok j ->
      Option.value ~default:""
        (Option.bind
           (Rt_obs.Json.member "error" j)
           (fun e -> Option.bind (Rt_obs.Json.member "kind" e) Rt_obs.Json.to_string))

let test_transport_two_clients () =
  let dir = Filename.temp_file "rtsynd_sock" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "s" in
  let journal = Filename.concat dir "j.journal" in
  let deadline = Unix.gettimeofday () +. 30. in
  let dcfg =
    {
      Daemon.default_config with
      Daemon.journal;
      spec = Some base_spec;
      max_frame = 256;
    }
  in
  let tcfg =
    {
      Transport.default with
      Transport.socket = Some sock;
      drain_timeout_s = 5.;
    }
  in
  let daemon = Stdlib.Domain.spawn (fun () -> Transport.run tcfg dcfg) in
  let rec wait_sock n =
    if Sys.file_exists sock then ()
    else if n = 0 then Alcotest.fail "socket never appeared"
    else begin
      Unix.sleepf 0.05;
      wait_sock (n - 1)
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (* Always attempt a shutdown so a failing assertion cannot leave
         the transport domain (and the test binary) hanging. *)
      (try
         let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
         Unix.connect fd (ADDR_UNIX sock);
         send_all fd "{\"v\":1,\"id\":\"kill\",\"op\":\"shutdown\"}\n";
         Unix.close fd
       with _ -> ());
      ignore (Stdlib.Domain.join daemon : int))
  @@ fun () ->
  wait_sock 200;
  let connect () =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.connect fd (ADDR_UNIX sock);
    fd
  in
  let c1 = connect () and c2 = connect () in
  let b1 = ref "" and b2 = ref "" in
  (* Interleaved partial writes: c1's first request is torn across two
     writes with c2's complete request landing in between. *)
  send_all c1 "{\"v\":1,\"id\":\"a\",\"op\":";
  send_all c2 "{\"v\":1,\"id\":\"x\",\"op\":\"stats\"}\n";
  send_all c1 "\"stats\"}\n{\"v\":1,\"id\":\"b\",\"op\":\"reverify\"}\n";
  let r1 = recv_lines c1 b1 2 ~deadline in
  let r2 = recv_lines c2 b2 1 ~deadline in
  Alcotest.(check (list string))
    "c1 responses arrive in request order" [ "a"; "b" ]
    (List.map response_id r1);
  checks "c2 got its own response" "x" (response_id (List.hd r2));
  (* Oversized frame on c2: structured error, connection stays usable. *)
  send_all c2 (String.make 400 'x' ^ "\n");
  let r = List.hd (recv_lines c2 b2 1 ~deadline) in
  checks "oversized frame answered with a structured error" "oversize"
    (error_kind r);
  send_all c2 "{\"v\":1,\"id\":\"y\",\"op\":\"stats\"}\n";
  checks "connection survives an oversized frame" "y"
    (response_id (List.hd (recv_lines c2 b2 1 ~deadline)));
  (* EOF mid-request on c1: structured error, then the daemon closes. *)
  send_all c1 "{\"v\":1,\"id\":\"c\",\"op\"";
  Unix.shutdown c1 Unix.SHUTDOWN_SEND;
  let r = List.hd (recv_lines c1 b1 1 ~deadline) in
  checks "EOF mid-request answered with a parse error" "parse" (error_kind r);
  recv_eof c1 ~deadline;
  Unix.close c1;
  (* Graceful shutdown: ack arrives, the daemon drains and exits 0. *)
  send_all c2 "{\"v\":1,\"id\":\"z\",\"op\":\"shutdown\"}\n";
  checks "shutdown acknowledged" "z"
    (response_id (List.hd (recv_lines c2 b2 1 ~deadline)));
  recv_eof c2 ~deadline;
  Unix.close c2;
  (* The transport unlinks its socket just after closing the last
     connection; poll briefly rather than racing that cleanup. *)
  let rec wait_unlink n =
    if not (Sys.file_exists sock) then ()
    else if n = 0 then Alcotest.fail "socket file not removed on drain"
    else begin
      Unix.sleepf 0.05;
      wait_unlink (n - 1)
    end
  in
  wait_unlink 100

let test_engine_admission_contract () =
  let _, code = Engine.admission Rt_workload.Suite.infeasible_pair in
  Alcotest.check Alcotest.int "impossible model exits 1" 1 code;
  let _, code =
    Engine.admission
      (Rt_workload.Suite.control_system Rt_workload.Suite.default_params)
  in
  checkb "verdict code is one of the contract's {0,1,5}" true
    (List.mem code [ 0; 1; 5 ])

let () =
  Alcotest.run "rt_daemon"
    [
      ( "canon",
        [
          Alcotest.test_case "key invariant under renaming/permutation" `Quick
            test_canon_invariance;
          Alcotest.test_case "no collisions across the example suite" `Quick
            test_canon_no_collisions;
          Alcotest.test_case "canonical schedule round trip" `Quick
            test_canon_schedule_roundtrip;
        ] );
      ( "journal",
        [ Alcotest.test_case "digest" `Quick test_journal_digest ] );
      ( "engine",
        [
          Alcotest.test_case "memo hit, crash replay, corruption refusal"
            `Quick test_engine_memo_and_replay;
          Alcotest.test_case "analytic admission contract" `Quick
            test_engine_admission_contract;
        ] );
      ( "framing",
        [
          QCheck_alcotest.to_alcotest qcheck_framing_torn_frames;
          QCheck_alcotest.to_alcotest qcheck_framing_oversize_resync;
          QCheck_alcotest.to_alcotest qcheck_framing_interleaved_clients;
          QCheck_alcotest.to_alcotest qcheck_framing_eof_mid_frame;
        ] );
      ( "transport",
        [
          Alcotest.test_case "two clients: ordering, oversize, eof, drain"
            `Quick test_transport_two_clients;
        ] );
    ]
