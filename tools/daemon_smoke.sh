#!/usr/bin/env bash
# Crash-recovery, warm-memo and overload smoke for rtsynd (see
# docs/DAEMON.md).  Three phases:
#
#   1. stream a mutation batch, kill -9 the daemon mid-stream;
#   2. restart on the same journal: replay must reach the digest the
#      live daemon last reported, reverify must pass, and an admit of
#      an alpha-renamed tenant must hit the canonical-form memo
#      (asserted via the daemon/memo_hits counter in stats);
#   3. a 10x burst against a tiny queue must shed with structured
#      "overloaded" responses (never a wedge) and the process must
#      still exit cleanly.
#
# Environment: RTSYND points at the binary (default: the dune build
# tree relative to the repo root this script lives in).
set -euo pipefail

cd "$(dirname "$0")/.."
RTSYND=${RTSYND:-_build/default/bin/rtsynd.exe}
[ -x "$RTSYND" ] || { echo "daemon_smoke: $RTSYND not built" >&2; exit 2; }

DIR=$(mktemp -d)
cleanup() {
  local j
  j=$(jobs -p)
  [ -n "$j" ] && kill $j 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT
J="$DIR/rtsynd.journal"

cat > "$DIR/base.spec" <<'EOF'
system "base" {
  element f_x weight 1 pipelinable;
  element f_y weight 1 pipelinable;
  constraint px periodic period 10 deadline 10 { f_x; }
}
EOF

fail() { echo "daemon_smoke: FAIL: $*" >&2; exit 1; }

wait_for() { # wait_for FILE PATTERN COUNT
  for _ in $(seq 1 100); do
    [ "$(grep -c "$2" "$1" 2>/dev/null || true)" -ge "$3" ] && return 0
    sleep 0.1
  done
  echo "--- $1 ---" >&2; cat "$1" >&2 || true
  fail "timed out waiting for $3 x $2 in $1"
}

# ------------------------------------------------------------------
# Phase 1: mutation batch, then kill -9 mid-stream.
# ------------------------------------------------------------------
{
  echo '{"v":1,"id":"a1","op":"admit","decl":"constraint q1 asynchronous separation 10 deadline 6 { f_x; }"}'
  echo '{"v":1,"id":"a2","op":"admit","decl":"constraint q2 asynchronous separation 12 deadline 8 { f_y; }"}'
  sleep 0.5
  echo '{"v":1,"id":"s1","op":"stats"}'
  sleep 60   # keep stdin open so only kill -9 ends the daemon
} | "$RTSYND" --spec "$DIR/base.spec" --journal "$J" > "$DIR/out1" &
PID=$!

wait_for "$DIR/out1" '"id":"s1"' 1
grep -q '"id":"a1","ok":true' "$DIR/out1" || fail "admit a1 not acknowledged"
grep -q '"id":"a2","ok":true' "$DIR/out1" || fail "admit a2 not acknowledged"
DIGEST=$(grep '"id":"s1"' "$DIR/out1" | grep -o '"digest":"[^"]*"' | head -1)
[ -n "$DIGEST" ] || fail "no digest in stats"

kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
echo "daemon_smoke: phase 1 ok (killed -9 holding $DIGEST)"

# ------------------------------------------------------------------
# Phase 2: restart, replay, reverify, alpha-renamed memo hit.
# ------------------------------------------------------------------
"$RTSYND" --spec "$DIR/base.spec" --journal "$J" > "$DIR/out2" <<'EOF' \
  || fail "restarted daemon exited nonzero"
{"v":1,"id":"r1","op":"reverify"}
{"v":1,"id":"t1","op":"retire","name":"q2"}
{"v":1,"id":"a3","op":"admit","decl":"constraint tenant_b asynchronous separation 12 deadline 8 { f_y; }"}
{"v":1,"id":"s2","op":"stats"}
EOF
grep -q '"id":"r1","ok":true' "$DIR/out2" || fail "reverify after replay failed"
grep '"id":"r1"' "$DIR/out2" | grep -qF "$DIGEST" \
  || fail "replayed digest does not match the pre-crash state ($DIGEST)"
grep '"id":"a3"' "$DIR/out2" | grep -q '"path":"memo"' \
  || fail "alpha-renamed tenant did not hit the canonical-form memo"
MEMO_HITS=$(grep '"id":"s2"' "$DIR/out2" | grep -o '"memo_hits":[0-9]*' | cut -d: -f2)
[ "${MEMO_HITS:-0}" -ge 1 ] || fail "daemon/memo_hits counter is ${MEMO_HITS:-absent}"
REPLAYED=$(grep '"id":"s2"' "$DIR/out2" | grep -o '"replayed_records":[0-9]*' | cut -d: -f2)
[ "${REPLAYED:-0}" -ge 1 ] || fail "no journal records replayed"
echo "daemon_smoke: phase 2 ok (replayed=$REPLAYED, memo_hits=$MEMO_HITS)"

# ------------------------------------------------------------------
# Phase 3: 10x burst against a tiny queue -> deterministic shedding.
# ------------------------------------------------------------------
{
  for i in $(seq 1 20); do
    echo '{"v":1,"id":"b'"$i"'","op":"what-if","decl":"constraint w'"$i"' asynchronous separation 14 deadline 9 { f_x; }"}'
  done
} | "$RTSYND" --spec "$DIR/base.spec" --journal "$J" \
      --max-queue 2 --degrade-heuristic 1 --degrade-analytic 2 > "$DIR/out3" \
  || fail "daemon wedged under burst"
SHED=$(grep -c '"kind":"overloaded"' "$DIR/out3" || true)
[ "$SHED" -ge 1 ] || fail "no overloaded responses under a 10x burst"
grep -q '"retry_after_ms":' "$DIR/out3" || fail "overloaded responses carry no retry-after hint"
ANSWERED=$(grep -c '"ok":true' "$DIR/out3" || true)
[ "$ANSWERED" -ge 1 ] || fail "every request shed: the daemon served nothing"
echo "daemon_smoke: phase 3 ok (shed=$SHED served=$ANSWERED)"

echo "daemon_smoke: OK"
