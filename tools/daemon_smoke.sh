#!/usr/bin/env bash
# Crash-recovery, warm-memo and overload smoke for rtsynd (see
# docs/DAEMON.md), over both transports.
#
# stdin sections (the original three phases):
#
#   1. stream a mutation batch, kill -9 the daemon mid-stream;
#   2. restart on the same journal: replay must reach the digest the
#      live daemon last reported, reverify must pass, and an admit of
#      an alpha-renamed tenant must hit the canonical-form memo
#      (asserted via the daemon/memo_hits counter in stats);
#   3. a 10x burst against a tiny queue must shed with structured
#      "overloaded" responses (never a wedge) and the process must
#      still exit cleanly.
#
# socket sections (the daemon-soak CI gate):
#
#   S1. 4 concurrent rtsynd_client streams against --socket, kill -9
#       mid-load (after two journaled admits were acknowledged);
#   S2. restart on the same journal + socket path: replay, reverify,
#       alpha-renamed memo hit, then a graceful shutdown drain that
#       must exit 0 and unlink the socket;
#   S3. 4 concurrent bursts against tiny per-connection and global
#       queues: shedding must be observed both in the clients'
#       "overloaded" responses and in the daemon/shed stats counter,
#       and the daemon must still drain cleanly.
#
# Environment:
#   RTSYND                 daemon binary (default: the dune build tree)
#   RTSYND_CLIENT          socket client (default: the dune build tree)
#   RTSYND_SMOKE_SECTIONS  "stdin socket" (default) or a subset
#   RTSYND_SMOKE_JOBS      --jobs passed to the daemon in the socket
#                          sections (default 1)
set -euo pipefail

cd "$(dirname "$0")/.."
RTSYND=${RTSYND:-_build/default/bin/rtsynd.exe}
RTSYND_CLIENT=${RTSYND_CLIENT:-_build/default/tools/rtsynd_client.exe}
SECTIONS=${RTSYND_SMOKE_SECTIONS:-stdin socket}
JOBS=${RTSYND_SMOKE_JOBS:-1}
[ -x "$RTSYND" ] || { echo "daemon_smoke: $RTSYND not built" >&2; exit 2; }

DIR=$(mktemp -d)
cleanup() {
  local j
  j=$(jobs -p)
  [ -n "$j" ] && kill $j 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT
J="$DIR/rtsynd.journal"

cat > "$DIR/base.spec" <<'EOF'
system "base" {
  element f_x weight 1 pipelinable;
  element f_y weight 1 pipelinable;
  constraint px periodic period 10 deadline 10 { f_x; }
}
EOF

fail() { echo "daemon_smoke: FAIL: $*" >&2; exit 1; }

wait_for() { # wait_for FILE PATTERN COUNT
  for _ in $(seq 1 100); do
    [ "$(grep -c "$2" "$1" 2>/dev/null || true)" -ge "$3" ] && return 0
    sleep 0.1
  done
  echo "--- $1 ---" >&2; cat "$1" >&2 || true
  fail "timed out waiting for $3 x $2 in $1"
}

wait_for_sock() { # wait_for_sock PATH
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  fail "socket $1 never appeared"
}

stdin_sections() {
# ------------------------------------------------------------------
# Phase 1: mutation batch, then kill -9 mid-stream.
# ------------------------------------------------------------------
{
  echo '{"v":1,"id":"a1","op":"admit","decl":"constraint q1 asynchronous separation 10 deadline 6 { f_x; }"}'
  echo '{"v":1,"id":"a2","op":"admit","decl":"constraint q2 asynchronous separation 12 deadline 8 { f_y; }"}'
  sleep 0.5
  echo '{"v":1,"id":"s1","op":"stats"}'
  sleep 60   # keep stdin open so only kill -9 ends the daemon
} | "$RTSYND" --spec "$DIR/base.spec" --journal "$J" > "$DIR/out1" &
PID=$!

wait_for "$DIR/out1" '"id":"s1"' 1
grep -q '"id":"a1","ok":true' "$DIR/out1" || fail "admit a1 not acknowledged"
grep -q '"id":"a2","ok":true' "$DIR/out1" || fail "admit a2 not acknowledged"
DIGEST=$(grep '"id":"s1"' "$DIR/out1" | grep -o '"digest":"[^"]*"' | head -1)
[ -n "$DIGEST" ] || fail "no digest in stats"

kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
echo "daemon_smoke: phase 1 ok (killed -9 holding $DIGEST)"

# ------------------------------------------------------------------
# Phase 2: restart, replay, reverify, alpha-renamed memo hit.
# ------------------------------------------------------------------
"$RTSYND" --spec "$DIR/base.spec" --journal "$J" > "$DIR/out2" <<'EOF' \
  || fail "restarted daemon exited nonzero"
{"v":1,"id":"r1","op":"reverify"}
{"v":1,"id":"t1","op":"retire","name":"q2"}
{"v":1,"id":"a3","op":"admit","decl":"constraint tenant_b asynchronous separation 12 deadline 8 { f_y; }"}
{"v":1,"id":"s2","op":"stats"}
EOF
grep -q '"id":"r1","ok":true' "$DIR/out2" || fail "reverify after replay failed"
grep '"id":"r1"' "$DIR/out2" | grep -qF "$DIGEST" \
  || fail "replayed digest does not match the pre-crash state ($DIGEST)"
grep '"id":"a3"' "$DIR/out2" | grep -q '"path":"memo"' \
  || fail "alpha-renamed tenant did not hit the canonical-form memo"
MEMO_HITS=$(grep '"id":"s2"' "$DIR/out2" | grep -o '"memo_hits":[0-9]*' | cut -d: -f2)
[ "${MEMO_HITS:-0}" -ge 1 ] || fail "daemon/memo_hits counter is ${MEMO_HITS:-absent}"
REPLAYED=$(grep '"id":"s2"' "$DIR/out2" | grep -o '"replayed_records":[0-9]*' | cut -d: -f2)
[ "${REPLAYED:-0}" -ge 1 ] || fail "no journal records replayed"
echo "daemon_smoke: phase 2 ok (replayed=$REPLAYED, memo_hits=$MEMO_HITS)"

# ------------------------------------------------------------------
# Phase 3: 10x burst against a tiny queue -> deterministic shedding.
# ------------------------------------------------------------------
{
  for i in $(seq 1 20); do
    echo '{"v":1,"id":"b'"$i"'","op":"what-if","decl":"constraint w'"$i"' asynchronous separation 14 deadline 9 { f_x; }"}'
  done
} | "$RTSYND" --spec "$DIR/base.spec" --journal "$J" \
      --max-queue 2 --degrade-heuristic 1 --degrade-analytic 2 > "$DIR/out3" \
  || fail "daemon wedged under burst"
SHED=$(grep -c '"kind":"overloaded"' "$DIR/out3" || true)
[ "$SHED" -ge 1 ] || fail "no overloaded responses under a 10x burst"
grep -q '"retry_after_ms":' "$DIR/out3" || fail "overloaded responses carry no retry-after hint"
ANSWERED=$(grep -c '"ok":true' "$DIR/out3" || true)
[ "$ANSWERED" -ge 1 ] || fail "every request shed: the daemon served nothing"
echo "daemon_smoke: phase 3 ok (shed=$SHED served=$ANSWERED)"

# ------------------------------------------------------------------
# Phase 4: an oversized frame is dropped with a structured error, the
# stream resynchronizes, and the daemon keeps serving (bugfix gate;
# also exercised hermetically by test/cli).
# ------------------------------------------------------------------
{
  printf '{"v":1,"id":"big","op":"admit","decl":"%s"}\n' \
    "$(head -c 8192 /dev/zero | tr '\0' 'x')"
  echo '{"v":1,"id":"s3","op":"stats"}'
} | "$RTSYND" --spec "$DIR/base.spec" --journal "$J" --max-frame 4096 \
      > "$DIR/out4" || fail "daemon wedged on an oversized frame"
grep -q '"kind":"oversize"' "$DIR/out4" \
  || fail "oversized frame not answered with a structured oversize error"
grep -q '"id":"s3","ok":true' "$DIR/out4" \
  || fail "daemon stopped serving after an oversized frame"
echo "daemon_smoke: phase 4 ok (oversize dropped, stream resynced)"
}

socket_sections() {
[ -x "$RTSYND_CLIENT" ] || fail "$RTSYND_CLIENT not built"
local S="$DIR/rtsynd.sock" J2="$DIR/rtsynd_sock.journal"
local PID c i CPIDS

# ------------------------------------------------------------------
# S1: 4 concurrent client streams, kill -9 mid-load.
# ------------------------------------------------------------------
"$RTSYND" --spec "$DIR/base.spec" --journal "$J2" --socket "$S" \
  --jobs "$JOBS" > "$DIR/sockd1" 2>&1 &
PID=$!
wait_for_sock "$S"
# two journaled mutations that must survive the crash
printf '%s\n' \
  '{"v":1,"id":"a1","op":"admit","decl":"constraint q1 asynchronous separation 10 deadline 6 { f_x; }"}' \
  '{"v":1,"id":"a2","op":"admit","decl":"constraint q2 asynchronous separation 12 deadline 8 { f_y; }"}' \
  | "$RTSYND_CLIENT" --socket "$S" > "$DIR/sock_ack" \
  || fail "pre-crash socket admits failed"
grep -q '"id":"a1","ok":true' "$DIR/sock_ack" || fail "socket admit a1 not acknowledged"
grep -q '"id":"a2","ok":true' "$DIR/sock_ack" || fail "socket admit a2 not acknowledged"
CPIDS=()
for c in 1 2 3 4; do
  { for i in $(seq 1 50); do
      echo '{"v":1,"id":"c'"$c"'-'"$i"'","op":"what-if","decl":"constraint w'"$c"'_'"$i"' asynchronous separation 14 deadline 9 { f_x; }"}'
    done
  } | "$RTSYND_CLIENT" --socket "$S" --timeout-s 30 \
        > "$DIR/sock_load$c" 2>/dev/null &
  CPIDS+=($!)
done
sleep 0.5
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
wait "${CPIDS[@]}" 2>/dev/null || true   # clients may lose the connection
echo "daemon_smoke: socket S1 ok (killed -9 under 4-client load)"

# ------------------------------------------------------------------
# S2: restart on the same journal + socket: replay, reverify, memo,
# then a graceful shutdown drain.
# ------------------------------------------------------------------
"$RTSYND" --spec "$DIR/base.spec" --journal "$J2" --socket "$S" \
  --jobs "$JOBS" > "$DIR/sockd2" 2>&1 &
PID=$!
wait_for_sock "$S"
printf '%s\n' \
  '{"v":1,"id":"r1","op":"reverify"}' \
  '{"v":1,"id":"t1","op":"retire","name":"q2"}' \
  '{"v":1,"id":"a3","op":"admit","decl":"constraint tenant_b asynchronous separation 12 deadline 8 { f_y; }"}' \
  '{"v":1,"id":"s1","op":"stats"}' \
  | "$RTSYND_CLIENT" --socket "$S" > "$DIR/sock_out2" \
  || fail "post-crash socket client failed"
grep -q '"id":"r1","ok":true' "$DIR/sock_out2" || fail "socket reverify after replay failed"
grep '"id":"a3"' "$DIR/sock_out2" | grep -q '"path":"memo"' \
  || fail "socket alpha-renamed tenant did not hit the canonical-form memo"
REPLAYED=$(grep '"id":"s1"' "$DIR/sock_out2" | grep -o '"replayed_records":[0-9]*' | cut -d: -f2)
[ "${REPLAYED:-0}" -ge 1 ] || fail "no journal records replayed over the socket"
echo '{"v":1,"id":"z","op":"shutdown"}' \
  | "$RTSYND_CLIENT" --socket "$S" > "$DIR/sock_bye" \
  || fail "shutdown client failed"
grep -q '"id":"z","ok":true' "$DIR/sock_bye" || fail "shutdown not acknowledged"
wait "$PID" || fail "socket daemon did not exit 0 on graceful drain"
[ -S "$S" ] && fail "socket file not unlinked on drain"
echo "daemon_smoke: socket S2 ok (replayed=$REPLAYED, drained clean)"

# ------------------------------------------------------------------
# S3: 4 concurrent bursts against tiny queues -> shedding observed in
# both the client responses and the daemon/shed counter.
# ------------------------------------------------------------------
"$RTSYND" --spec "$DIR/base.spec" --journal "$DIR/shed.journal" --socket "$S" \
  --max-queue 2 --conn-queue 2 --degrade-heuristic 1 --degrade-analytic 2 \
  --jobs "$JOBS" > "$DIR/sockd3" 2>&1 &
PID=$!
wait_for_sock "$S"
CPIDS=()
for c in 1 2 3 4; do
  { for i in $(seq 1 50); do
      echo '{"v":1,"id":"x'"$c"'-'"$i"'","op":"what-if","decl":"constraint v'"$c"'_'"$i"' asynchronous separation 14 deadline 9 { f_x; }"}'
    done
  } | "$RTSYND_CLIENT" --socket "$S" --timeout-s 60 > "$DIR/sock_shed$c" &
  CPIDS+=($!)
done
wait "${CPIDS[@]}" || fail "burst client wedged against tiny queues"
SHED_SEEN=$(cat "$DIR"/sock_shed[1-4] | grep -c '"kind":"overloaded"' || true)
[ "$SHED_SEEN" -ge 1 ] || fail "no overloaded responses across 4 burst clients"
ANSWERED=$(cat "$DIR"/sock_shed[1-4] | grep -c '"ok":true' || true)
[ "$ANSWERED" -ge 1 ] || fail "every burst request shed: the daemon served nothing"
echo '{"v":1,"id":"s2","op":"stats"}
{"v":1,"id":"z2","op":"shutdown"}' \
  | "$RTSYND_CLIENT" --socket "$S" > "$DIR/sock_stats" \
  || fail "stats client failed"
SHED_CTR=$(grep '"id":"s2"' "$DIR/sock_stats" | grep -o '"shed":[0-9]*' | cut -d: -f2)
[ "${SHED_CTR:-0}" -ge 1 ] || fail "daemon/shed counter is ${SHED_CTR:-absent} after the burst"
wait "$PID" || fail "socket daemon did not exit 0 after shedding"
echo "daemon_smoke: socket S3 ok (client-observed shed=$SHED_SEEN, daemon/shed=$SHED_CTR, served=$ANSWERED)"
}

for section in $SECTIONS; do
  case "$section" in
    stdin)  stdin_sections ;;
    socket) socket_sections ;;
    *) fail "unknown section '$section' (want: stdin socket)" ;;
  esac
done

echo "daemon_smoke: OK"
