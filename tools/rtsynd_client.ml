(* rtsynd_client — a minimal pipelining client for rtsynd's socket
   transport, used by tools/daemon_smoke.sh and the CI daemon-soak gate.

     rtsynd_client (--socket PATH | --tcp PORT) [--timeout-s S] < requests.jsonl

   Streams every stdin byte to the daemon (pipelined, draining responses
   concurrently so neither side's buffers can deadlock), half-closes the
   write side at stdin EOF, then keeps printing responses until the
   daemon closes the connection — which it does after serving every
   queued request of a half-closed client.

   Exit codes: 0 done; 2 usage/connect failure; 3 overall deadline hit
   (a wedged daemon turns into a visible failure, not a hung CI job). *)

let usage () =
  prerr_endline
    "usage: rtsynd_client (--socket PATH | --tcp PORT) [--timeout-s S]";
  exit 2

let () =
  let socket = ref None and tcp = ref None and timeout_s = ref 60. in
  let rec parse = function
    | [] -> ()
    | "--socket" :: p :: rest ->
        socket := Some p;
        parse rest
    | "--tcp" :: p :: rest ->
        (match int_of_string_opt p with
        | Some port -> tcp := Some port
        | None -> usage ());
        parse rest
    | "--timeout-s" :: s :: rest ->
        (match float_of_string_opt s with
        | Some t when t > 0. -> timeout_s := t
        | _ -> usage ());
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let addr =
    match (!socket, !tcp) with
    | Some p, None -> Unix.ADDR_UNIX p
    | None, Some port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
    | _ -> usage ()
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with Unix.Unix_error (e, _, _) ->
     prerr_endline ("rtsynd_client: connect: " ^ Unix.error_message e);
     exit 2);
  Unix.set_nonblock fd;
  let payload = In_channel.input_all In_channel.stdin in
  let deadline = Unix.gettimeofday () +. !timeout_s in
  let sent = ref 0 in
  let half_closed = ref false in
  let buf = Bytes.create 65536 in
  let done_ = ref false in
  while not !done_ do
    let now = Unix.gettimeofday () in
    if now > deadline then begin
      prerr_endline "rtsynd_client: deadline exceeded";
      exit 3
    end;
    let want_write = !sent < String.length payload in
    let rd, wr =
      match
        Unix.select [ fd ]
          (if want_write then [ fd ] else [])
          []
          (min 1.0 (deadline -. now))
      with
      | rd, wr, _ -> (rd, wr)
      | exception Unix.Unix_error (EINTR, _, _) -> ([], [])
    in
    if wr <> [] then begin
      match
        Unix.write_substring fd payload !sent (String.length payload - !sent)
      with
      | n -> sent := !sent + n
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) ->
          prerr_endline "rtsynd_client: connection lost while sending";
          exit 1
    end;
    if (not !half_closed) && !sent >= String.length payload then begin
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      half_closed := true
    end;
    if rd <> [] then begin
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> done_ := true
      | n ->
          print_string (Bytes.sub_string buf 0 n);
          flush stdout
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> done_ := true
    end
  done;
  (try Unix.close fd with _ -> ());
  exit 0
