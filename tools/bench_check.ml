(* bench_check: compare two bench JSON files and fail on regression.

   Usage:
     bench_check CANDIDATE REFERENCE [options]

   Options:
     --tolerance T        default relative tolerance (default 0.25)
     --eps E              absolute slack added to benchmark-metric limits
                          (default 0; keeps microsecond-scale timing rows
                          from flaking — counters never get eps)
     --metric NAME[:TOL]  compare benchmark-row field NAME (repeatable);
                          default when no check is requested at all:
                          optimized_seconds
     --counter NAME[:TOL] compare counter NAME from the counters block
                          (repeatable)
     --all-counters[:TOL] compare every counter in the reference
     --counter-min NAME:V require candidate counter NAME >= V (repeatable;
                          an absolute floor, independent of the reference —
                          e.g. table_hits:1 fails the build if the
                          transposition table never hit)
     --counter-max NAME:V require candidate counter NAME <= V (repeatable;
                          the dual ceiling — e.g.
                          decompose/component_solves:1 fails the build if
                          an admission re-solved an untouched component;
                          an absent counter fails, catching typos)
     --allow-missing      skip (rather than fail on) reference benchmarks
                          absent from the candidate

   A metric REGRESSES when candidate > reference * (1 + tolerance) + eps —
   one-sided, lower is better.  Exit 0 when all comparisons pass, 1 on
   any regression or structural error, 2 on usage/load errors.

   The comparison logic lives in Rt_obs.Bench_diff (unit-tested in
   test/test_obs.ml); this file is argument parsing only. *)

module BD = Rt_obs.Bench_diff

let usage () =
  prerr_endline
    "usage: bench_check CANDIDATE REFERENCE [--tolerance T] [--eps E] \
     [--metric NAME[:TOL]]... [--counter NAME[:TOL]]... \
     [--all-counters[:TOL]] [--counter-min NAME:V]... \
     [--counter-max NAME:V]... [--allow-missing]";
  exit 2

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

(* "name" or "name:0.5" *)
let parse_spec ~default_tol s =
  match String.rindex_opt s ':' with
  | None -> (s, default_tol)
  | Some i -> (
      let name = String.sub s 0 i in
      let tol = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt tol with
      | Some t when t >= 0.0 -> (name, t)
      | _ -> die "bad tolerance in %S" s)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let files = ref [] in
  let tolerance = ref 0.25 in
  let eps = ref 0.0 in
  let metrics = ref [] in
  let counters = ref [] in
  let all_counters = ref None in
  let counter_mins = ref [] in
  let counter_maxes = ref [] in
  let allow_missing = ref false in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: t :: rest -> (
        match float_of_string_opt t with
        | Some v when v >= 0.0 ->
            tolerance := v;
            parse rest
        | _ -> die "bad --tolerance %S" t)
    | "--eps" :: e :: rest -> (
        match float_of_string_opt e with
        | Some v when v >= 0.0 ->
            eps := v;
            parse rest
        | _ -> die "bad --eps %S" e)
    | "--metric" :: m :: rest ->
        metrics := m :: !metrics;
        parse rest
    | "--counter" :: c :: rest ->
        counters := c :: !counters;
        parse rest
    | "--all-counters" :: rest ->
        all_counters := Some None;
        parse rest
    | a :: rest when String.length a > 15
                     && String.sub a 0 15 = "--all-counters:" -> (
        let t = String.sub a 15 (String.length a - 15) in
        match float_of_string_opt t with
        | Some v when v >= 0.0 ->
            all_counters := Some (Some v);
            parse rest
        | _ -> die "bad tolerance in %S" a)
    | "--counter-min" :: c :: rest -> (
        match String.rindex_opt c ':' with
        | None -> die "--counter-min needs NAME:V, got %S" c
        | Some i -> (
            let name = String.sub c 0 i in
            match
              float_of_string_opt (String.sub c (i + 1) (String.length c - i - 1))
            with
            | Some v ->
                counter_mins := (name, v) :: !counter_mins;
                parse rest
            | None -> die "bad minimum in %S" c))
    | "--counter-max" :: c :: rest -> (
        match String.rindex_opt c ':' with
        | None -> die "--counter-max needs NAME:V, got %S" c
        | Some i -> (
            let name = String.sub c 0 i in
            match
              float_of_string_opt (String.sub c (i + 1) (String.length c - i - 1))
            with
            | Some v ->
                counter_maxes := (name, v) :: !counter_maxes;
                parse rest
            | None -> die "bad maximum in %S" c))
    | "--allow-missing" :: rest ->
        allow_missing := true;
        parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' ->
        die "unknown option %s" a
    | f :: rest ->
        files := f :: !files;
        parse rest
  in
  parse args;
  let cand_path, ref_path =
    match List.rev !files with [ c; r ] -> (c, r) | _ -> usage ()
  in
  let load path =
    match BD.load path with
    | Ok run -> run
    | Error e ->
        prerr_endline e;
        exit 2
  in
  let candidate = load cand_path and reference = load ref_path in
  let metric_checks =
    match List.rev !metrics with
    | []
      when !counters = [] && !all_counters = None && !counter_mins = []
           && !counter_maxes = [] ->
        (* no check requested at all: gate wall time *)
        [ { BD.metric = "optimized_seconds"; tol = !tolerance; eps = !eps;
            scope = `Benchmarks } ]
    | ms ->
        List.map
          (fun m ->
            let name, tol = parse_spec ~default_tol:!tolerance m in
            { BD.metric = name; tol; eps = !eps; scope = `Benchmarks })
          ms
  in
  let counter_checks =
    let named =
      List.rev_map
        (fun c ->
          let name, tol = parse_spec ~default_tol:!tolerance c in
          { BD.metric = name; tol; eps = 0.0; scope = `Counters })
        !counters
    in
    match !all_counters with
    | None -> named
    | Some tol_opt ->
        let tol = Option.value ~default:!tolerance tol_opt in
        let every =
          List.map
            (fun (name, _) ->
              { BD.metric = name; tol; eps = 0.0; scope = `Counters })
            reference.BD.counters
        in
        named @ every
  in
  let outcome =
    BD.diff ~allow_missing:!allow_missing
      ~checks:(metric_checks @ counter_checks)
      ~candidate ~reference ()
  in
  Format.printf "bench_check: %s vs %s@.%a" cand_path ref_path BD.pp_outcome
    outcome;
  (* Absolute counter floors are checked against the candidate alone —
     the reference has no say in whether e.g. the transposition table
     hit at all this run. *)
  let mins_ok =
    List.fold_left
      (fun ok (name, v) ->
        match List.assoc_opt name candidate.BD.counters with
        | None ->
            Format.printf "FAIL counter %s: absent (minimum %g required)@."
              name v;
            false
        | Some actual when actual < v ->
            Format.printf "FAIL counter %s: %g below required minimum %g@."
              name actual v;
            false
        | Some actual ->
            Format.printf "ok   counter %s: %g >= %g@." name actual v;
            ok)
      true
      (List.rev !counter_mins)
  in
  (* Ceilings mirror the floors: candidate-only, absent counters fail
     (a misspelt name must not pass vacuously). *)
  let maxes_ok =
    List.fold_left
      (fun ok (name, v) ->
        match List.assoc_opt name candidate.BD.counters with
        | None ->
            Format.printf "FAIL counter %s: absent (maximum %g required)@."
              name v;
            false
        | Some actual when actual > v ->
            Format.printf "FAIL counter %s: %g above required maximum %g@."
              name actual v;
            false
        | Some actual ->
            Format.printf "ok   counter %s: %g <= %g@." name actual v;
            ok)
      true
      (List.rev !counter_maxes)
  in
  if BD.passed outcome && mins_ok && maxes_ok then exit 0 else exit 1
