#!/usr/bin/env bash
# Loop-driven CI test gate (replaces the per-suite copy-pasted grep
# steps in ci.yml).  Reads tools/test_gates.manifest — `exe|test name`
# lines — runs each executable once, and requires every named test to
# have RUN and PASSED (an OK line in the alcotest output).  Add a line
# to the manifest to gate a new property.
#
# Run it through the switch (`opam exec -- bash tools/test_gates.sh`)
# or anywhere `dune exec` works.
set -euo pipefail

cd "$(dirname "$0")/.."
MANIFEST=${1:-tools/test_gates.manifest}
[ -r "$MANIFEST" ] || { echo "test_gates: no manifest $MANIFEST" >&2; exit 2; }

LOGDIR=$(mktemp -d)
trap 'rm -rf "$LOGDIR"' EXIT

manifest_lines() { grep -v '^[[:space:]]*\(#\|$\)' "$MANIFEST"; }

# Run each executable exactly once, however many tests it gates.
for exe in $(manifest_lines | cut -d'|' -f1 | sort -u); do
  log="$LOGDIR/$(echo "$exe" | tr '/' '_').log"
  echo "== $exe"
  if ! dune exec "$exe" >"$log" 2>&1; then
    cat "$log"
    echo "test_gates: $exe exited nonzero" >&2
    exit 1
  fi
done

status=0
gated=0
while IFS='|' read -r exe name; do
  gated=$((gated + 1))
  log="$LOGDIR/$(echo "$exe" | tr '/' '_').log"
  if ! grep -F "$name" "$log" | grep -q "OK"; then
    echo "test_gates: gated test '$name' in $exe did not run and pass" >&2
    status=1
  fi
done < <(manifest_lines)

[ "$status" -eq 0 ] && echo "test_gates: OK ($gated gated tests across $(manifest_lines | cut -d'|' -f1 | sort -u | wc -l) executables)"
exit "$status"
